//! One-dimensional strided intervals — the `lo : hi : stride` triplets of
//! bounded regular section analysis.

/// A strided interval `{ lo, lo + stride, lo + 2*stride, ... } ∩ [lo, hi]`.
///
/// Invariants (enforced by constructors and maintained by all operations):
///
/// * `lo <= hi` — empty intervals are represented by [`Interval::empty`],
///   a canonical sentinel, never by `lo > hi`.
/// * `stride >= 1`.
/// * `hi` is *aligned*: `(hi - lo) % stride == 0`, so `hi` is the actual
///   last element, not just an upper bound.
/// * Singletons (`lo == hi`) always have `stride == 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    lo: i64,
    hi: i64,
    stride: i64,
    empty: bool,
}

impl Interval {
    /// The canonical empty interval.
    pub const fn empty() -> Self {
        Interval {
            lo: 0,
            hi: -1,
            stride: 1,
            empty: true,
        }
    }

    /// A dense (stride-1) interval covering `lo ..= hi`.
    ///
    /// Returns the empty interval if `lo > hi`.
    pub fn dense(lo: i64, hi: i64) -> Self {
        Self::new(lo, hi, 1)
    }

    /// A single point.
    pub fn point(p: i64) -> Self {
        Self::new(p, p, 1)
    }

    /// A strided interval; `hi` is clamped down to the last reachable
    /// element. Returns the empty interval if `lo > hi`. `stride` must be
    /// at least 1.
    ///
    /// # Panics
    /// Panics if `stride < 1`.
    pub fn new(lo: i64, hi: i64, stride: i64) -> Self {
        assert!(stride >= 1, "interval stride must be >= 1, got {stride}");
        if lo > hi {
            return Self::empty();
        }
        let span = hi - lo;
        let hi = lo + (span / stride) * stride;
        if lo == hi {
            Interval {
                lo,
                hi,
                stride: 1,
                empty: false,
            }
        } else {
            Interval {
                lo,
                hi,
                stride,
                empty: false,
            }
        }
    }

    /// Lower bound (meaningless for empty intervals).
    #[inline]
    pub fn lo(&self) -> i64 {
        self.lo
    }

    /// Last element (meaningless for empty intervals).
    #[inline]
    pub fn hi(&self) -> i64 {
        self.hi
    }

    /// Stride between consecutive elements.
    #[inline]
    pub fn stride(&self) -> i64 {
        self.stride
    }

    /// True if the interval contains no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.empty
    }

    /// True if the interval is dense (stride 1) or empty.
    #[inline]
    pub fn is_dense(&self) -> bool {
        self.empty || self.stride == 1
    }

    /// Number of elements in the interval.
    pub fn count(&self) -> u64 {
        if self.empty {
            0
        } else {
            ((self.hi - self.lo) / self.stride + 1) as u64
        }
    }

    /// True if `x` is a member of the interval.
    pub fn contains(&self, x: i64) -> bool {
        !self.empty && x >= self.lo && x <= self.hi && (x - self.lo) % self.stride == 0
    }

    /// True if every element of `other` is an element of `self`.
    ///
    /// Exact for all stride combinations.
    pub fn contains_interval(&self, other: &Interval) -> bool {
        if other.empty {
            return true;
        }
        if self.empty {
            return false;
        }
        // Endpoints must be members.
        if !self.contains(other.lo) || !self.contains(other.hi) {
            return false;
        }
        if other.lo == other.hi {
            return true;
        }
        // All of other's elements are hit iff other's stride is a multiple
        // of ours (their lattice is a sub-lattice of ours).
        other.stride % self.stride == 0
    }

    /// Exact intersection of two strided intervals.
    ///
    /// The intersection of two arithmetic progressions is itself an
    /// arithmetic progression (with stride `lcm(s1, s2)`), so this is always
    /// exact.
    pub fn intersect(&self, other: &Interval) -> Interval {
        if self.empty || other.empty {
            return Interval::empty();
        }
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo > hi {
            return Interval::empty();
        }
        if self.stride == 1 && other.stride == 1 {
            return Interval::dense(lo, hi);
        }
        // Solve x ≡ self.lo (mod s1), x ≡ other.lo (mod s2) via CRT.
        let (g, _, _) = ext_gcd(self.stride, other.stride);
        let diff = other.lo - self.lo;
        if diff.rem_euclid(g) != 0 {
            return Interval::empty(); // lattices never meet
        }
        let l = lcm(self.stride, other.stride);
        // Find the smallest member of both lattices that is >= lo.
        let step = self.stride;
        let (_, m1, _) = ext_gcd(step / g, other.stride / g);
        // x = self.lo + step * k where k ≡ (diff/g) * m1 (mod other.stride/g)
        let modulus = other.stride / g;
        let k0 = ((diff / g) % modulus * (m1 % modulus)) % modulus;
        let k0 = k0.rem_euclid(modulus);
        let x0 = self.lo + step * k0; // smallest common member >= self.lo
        let first = if x0 >= lo {
            x0
        } else {
            x0 + ((lo - x0 + l - 1) / l) * l
        };
        if first > hi {
            return Interval::empty();
        }
        Interval::new(first, hi, l)
    }

    /// True if the two intervals share at least one element. Exact.
    pub fn overlaps(&self, other: &Interval) -> bool {
        !self.intersect(other).is_empty()
    }

    /// Smallest single interval containing both (the BRS `UNION` hull).
    ///
    /// Over-approximates whenever the exact union is not itself a regular
    /// section: the result stride is `gcd` of the input strides and the
    /// offset difference, which may admit elements in neither input. This is
    /// the classic Havlak–Kennedy merge and is safe (superset) for transfer
    /// sizing.
    pub fn hull(&self, other: &Interval) -> Interval {
        if self.empty {
            return *other;
        }
        if other.empty {
            return *self;
        }
        let lo = self.lo.min(other.lo);
        let hi = self.hi.max(other.hi);
        let mut g = gcd(self.stride, other.stride);
        g = gcd(g, (self.lo - other.lo).abs().max(1));
        // Offsets differing by a non-multiple of the stride force density.
        let g = if (self.lo - other.lo) % g != 0 { 1 } else { g };
        Interval::new(lo, hi, g.max(1))
    }

    /// Exact subtraction for dense intervals: `self \ other` as 0–2 dense
    /// pieces.
    ///
    /// Only defined when both intervals are dense; strided callers must
    /// go through [`crate::SectionSet`], which falls back to conservative
    /// handling.
    ///
    /// # Panics
    /// Panics if either interval is non-dense.
    pub fn subtract_dense(&self, other: &Interval) -> (Interval, Interval) {
        assert!(
            self.is_dense() && other.is_dense(),
            "subtract_dense requires stride-1 intervals"
        );
        if self.empty {
            return (Interval::empty(), Interval::empty());
        }
        if other.empty || other.hi < self.lo || other.lo > self.hi {
            return (*self, Interval::empty());
        }
        let left = if other.lo > self.lo {
            Interval::dense(self.lo, other.lo - 1)
        } else {
            Interval::empty()
        };
        let right = if other.hi < self.hi {
            Interval::dense(other.hi + 1, self.hi)
        } else {
            Interval::empty()
        };
        (left, right)
    }

    /// Iterate over the members (for tests and small sections only).
    pub fn iter(&self) -> impl Iterator<Item = i64> + 'static {
        let (lo, hi, stride, empty) = (self.lo, self.hi, self.stride, self.empty);
        (0..)
            .map(move |k| lo + k * stride)
            .take_while(move |&x| !empty && x <= hi)
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.empty {
            write!(f, "∅")
        } else if self.stride == 1 {
            write!(f, "[{}:{}]", self.lo, self.hi)
        } else {
            write!(f, "[{}:{}:{}]", self.lo, self.hi, self.stride)
        }
    }
}

/// Greatest common divisor (inputs must be positive).
pub(crate) fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Least common multiple.
pub(crate) fn lcm(a: i64, b: i64) -> i64 {
    a / gcd(a, b) * b
}

/// Extended Euclid: returns `(g, x, y)` with `a*x + b*y = g`.
fn ext_gcd(a: i64, b: i64) -> (i64, i64, i64) {
    if b == 0 {
        (a, 1, 0)
    } else {
        let (g, x, y) = ext_gcd(b, a % b);
        (g, y, x - (a / b) * y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_properties() {
        let e = Interval::empty();
        assert!(e.is_empty());
        assert_eq!(e.count(), 0);
        assert!(!e.contains(0));
        assert_eq!(e.to_string(), "∅");
    }

    #[test]
    fn dense_count_and_contains() {
        let i = Interval::dense(3, 7);
        assert_eq!(i.count(), 5);
        assert!(i.contains(3) && i.contains(7) && i.contains(5));
        assert!(!i.contains(2) && !i.contains(8));
        assert_eq!(i.to_string(), "[3:7]");
    }

    #[test]
    fn strided_alignment_clamps_hi() {
        let i = Interval::new(0, 10, 4);
        assert_eq!(i.hi(), 8); // 0, 4, 8
        assert_eq!(i.count(), 3);
        assert!(i.contains(8) && !i.contains(10));
        assert_eq!(i.to_string(), "[0:8:4]");
    }

    #[test]
    fn singleton_normalizes_stride() {
        let i = Interval::new(5, 5, 100);
        assert_eq!(i.stride(), 1);
        assert_eq!(i.count(), 1);
    }

    #[test]
    fn inverted_bounds_are_empty() {
        assert!(Interval::new(10, 3, 1).is_empty());
    }

    #[test]
    #[should_panic(expected = "stride must be >= 1")]
    fn zero_stride_panics() {
        let _ = Interval::new(0, 10, 0);
    }

    #[test]
    fn intersect_dense() {
        let a = Interval::dense(0, 10);
        let b = Interval::dense(5, 20);
        assert_eq!(a.intersect(&b), Interval::dense(5, 10));
        assert_eq!(b.intersect(&a), Interval::dense(5, 10));
    }

    #[test]
    fn intersect_disjoint_is_empty() {
        let a = Interval::dense(0, 4);
        let b = Interval::dense(5, 9);
        assert!(a.intersect(&b).is_empty());
    }

    #[test]
    fn intersect_strided_same_phase() {
        // {0,4,8,12,16} ∩ {0,6,12,18} = {0,12}
        let a = Interval::new(0, 16, 4);
        let b = Interval::new(0, 18, 6);
        let c = a.intersect(&b);
        assert_eq!(c, Interval::new(0, 12, 12));
    }

    #[test]
    fn intersect_strided_offset_phase() {
        // {1,4,7,10,13} ∩ {4,9,14} = {4} (lcm 15, only one in range)
        let a = Interval::new(1, 13, 3);
        let b = Interval::new(4, 14, 5);
        let c = a.intersect(&b);
        assert_eq!(c, Interval::point(4));
    }

    #[test]
    fn intersect_incompatible_lattices() {
        // Evens vs odds never meet.
        let a = Interval::new(0, 100, 2);
        let b = Interval::new(1, 99, 2);
        assert!(a.intersect(&b).is_empty());
    }

    #[test]
    fn intersect_brute_force_agreement() {
        // Exhaustively check against brute-force sets for a grid of shapes.
        for s1 in 1..5i64 {
            for s2 in 1..5i64 {
                for o1 in 0..4i64 {
                    for o2 in 0..4i64 {
                        let a = Interval::new(o1, o1 + 20, s1);
                        let b = Interval::new(o2, o2 + 15, s2);
                        let c = a.intersect(&b);
                        let sa: Vec<i64> = a.iter().collect();
                        let sb: Vec<i64> = b.iter().collect();
                        let expect: Vec<i64> =
                            sa.iter().copied().filter(|x| sb.contains(x)).collect();
                        let got: Vec<i64> = c.iter().collect();
                        assert_eq!(got, expect, "a={a} b={b}");
                    }
                }
            }
        }
    }

    #[test]
    fn hull_is_superset() {
        let a = Interval::new(0, 8, 4);
        let b = Interval::new(2, 10, 4);
        let h = a.hull(&b);
        for x in a.iter().chain(b.iter()) {
            assert!(h.contains(x), "{h} missing {x}");
        }
    }

    #[test]
    fn hull_of_aligned_strided_stays_strided() {
        let a = Interval::new(0, 8, 4);
        let b = Interval::new(12, 20, 4);
        let h = a.hull(&b);
        assert_eq!(h, Interval::new(0, 20, 4));
    }

    #[test]
    fn hull_with_empty_is_identity() {
        let a = Interval::new(3, 9, 3);
        assert_eq!(a.hull(&Interval::empty()), a);
        assert_eq!(Interval::empty().hull(&a), a);
    }

    #[test]
    fn contains_interval_cases() {
        let big = Interval::dense(0, 100);
        assert!(big.contains_interval(&Interval::new(0, 100, 5)));
        assert!(big.contains_interval(&Interval::empty()));
        assert!(!big.contains_interval(&Interval::dense(50, 101)));
        let evens = Interval::new(0, 100, 2);
        assert!(evens.contains_interval(&Interval::new(0, 100, 4)));
        assert!(!evens.contains_interval(&Interval::new(0, 100, 3)));
        assert!(!evens.contains_interval(&Interval::point(1)));
    }

    #[test]
    fn subtract_dense_middle_splits() {
        let a = Interval::dense(0, 10);
        let b = Interval::dense(3, 6);
        let (l, r) = a.subtract_dense(&b);
        assert_eq!(l, Interval::dense(0, 2));
        assert_eq!(r, Interval::dense(7, 10));
    }

    #[test]
    fn subtract_dense_disjoint_keeps_all() {
        let a = Interval::dense(0, 4);
        let (l, r) = a.subtract_dense(&Interval::dense(10, 20));
        assert_eq!(l, a);
        assert!(r.is_empty());
    }

    #[test]
    fn subtract_dense_covering_removes_all() {
        let a = Interval::dense(5, 9);
        let (l, r) = a.subtract_dense(&Interval::dense(0, 20));
        assert!(l.is_empty() && r.is_empty());
    }

    #[test]
    fn gcd_lcm_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(7, 0), 7);
        assert_eq!(lcm(4, 6), 12);
    }
}
