//! Bounded Regular Section (BRS) analysis.
//!
//! This crate implements the array-section algebra that GROPHECY++ uses to
//! reason about which parts of which arrays a kernel reads and writes. It is
//! a faithful implementation of the *Bounded Regular Sections* of Havlak &
//! Kennedy ("An implementation of interprocedural bounded regular section
//! analysis", IEEE TPDS 1991), the representation cited by the paper
//! (reference \[5\]).
//!
//! A bounded regular section describes, per array dimension, a triplet
//! `lo : hi : stride` — the set `{ lo, lo+stride, lo+2*stride, ..., <= hi }`.
//! Multi-dimensional sections are cartesian products of such triplets, i.e.
//! strided hyper-rectangles. Two operators drive the analysis (paper §III-B):
//!
//! * [`Section::intersect`] — `INTERSECT`, detects overlap between sections
//!   (used for dependence detection between kernel statements), and
//! * [`SectionSet::union_with`] — `UNION`, merges the sections that must be
//!   transferred across the PCIe bus.
//!
//! Exactness policy: all operations on **dense** (stride-1) sections are
//! exact, including element counting of unions via disjoint decomposition.
//! Operations involving non-unit strides may over-approximate (return a
//! superset), which is the safe direction for transfer-size estimation: we
//! would rather transfer a few extra elements than miss one. Every
//! over-approximating code path is documented at the definition site.
//!
//! # Example
//!
//! ```
//! use gpp_brs::{Section, SectionSet};
//!
//! // A 2-D stencil reads rows 0..=101 and writes rows 1..=100 of a grid.
//! let read = Section::dense(&[(0, 101), (0, 101)]);
//! let written = Section::dense(&[(1, 100), (1, 100)]);
//!
//! // The halo (read but never written) is what must come from the CPU.
//! let mut halo = SectionSet::from_section(read);
//! halo.subtract_section(&written);
//! assert_eq!(halo.element_count(), 102 * 102 - 100 * 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dependence;
pub mod interval;
pub mod section;
pub mod set;

pub use dependence::{classify_dependence, DependenceKind};
pub use interval::Interval;
pub use section::Section;
pub use set::SectionSet;

/// Identifies an array within a kernel or kernel sequence.
///
/// `ArrayId`s are allocated by whoever builds the program representation
/// (see the `gpp-skeleton` crate) and are only meaningful within that scope.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct ArrayId(pub u32);

impl ArrayId {
    /// Returns the raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ArrayId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "A{}", self.0)
    }
}

/// Whether an array reference is a load or a store.
///
/// The data usage analyzer combines access kinds with section overlap to
/// decide what must be transferred: sections that are *read but not
/// previously written* flow host→device; the union of all *written* sections
/// flows device→host (paper §III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum AccessKind {
    /// The statement loads from the section.
    Read,
    /// The statement stores to the section.
    Write,
}

impl AccessKind {
    /// True if this access is a read.
    #[inline]
    pub fn is_read(self) -> bool {
        matches!(self, AccessKind::Read)
    }

    /// True if this access is a write.
    #[inline]
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_id_display_and_index() {
        let a = ArrayId(7);
        assert_eq!(a.index(), 7);
        assert_eq!(a.to_string(), "A7");
    }

    #[test]
    fn access_kind_predicates() {
        assert!(AccessKind::Read.is_read());
        assert!(!AccessKind::Read.is_write());
        assert!(AccessKind::Write.is_write());
        assert!(!AccessKind::Write.is_read());
    }
}
