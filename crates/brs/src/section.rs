//! Multi-dimensional bounded regular sections: cartesian products of
//! strided intervals.

use crate::interval::Interval;

/// A multi-dimensional bounded regular section: one [`Interval`] per array
/// dimension, denoting their cartesian product.
///
/// A `Section` with zero dimensions denotes a scalar (exactly one element).
/// A `Section` is empty iff any of its dimensions is empty; empty sections
/// are canonicalized so that *all* dimensions are the empty interval.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Section {
    dims: Vec<Interval>,
}

impl Section {
    /// Builds a section from per-dimension intervals, canonicalizing
    /// emptiness.
    pub fn new(dims: Vec<Interval>) -> Self {
        if dims.iter().any(Interval::is_empty) {
            let n = dims.len();
            return Section {
                dims: vec![Interval::empty(); n],
            };
        }
        Section { dims }
    }

    /// A dense section from `(lo, hi)` bounds per dimension.
    pub fn dense(bounds: &[(i64, i64)]) -> Self {
        Section::new(
            bounds
                .iter()
                .map(|&(lo, hi)| Interval::dense(lo, hi))
                .collect(),
        )
    }

    /// The section covering an entire array of the given extents
    /// (`0 ..= extent-1` per dimension).
    pub fn whole(extents: &[usize]) -> Self {
        Section::new(
            extents
                .iter()
                .map(|&e| {
                    if e == 0 {
                        Interval::empty()
                    } else {
                        Interval::dense(0, e as i64 - 1)
                    }
                })
                .collect(),
        )
    }

    /// A scalar section (zero dimensions, one element).
    pub fn scalar() -> Self {
        Section { dims: Vec::new() }
    }

    /// An empty section of the given dimensionality.
    pub fn empty(ndims: usize) -> Self {
        Section {
            dims: vec![Interval::empty(); ndims],
        }
    }

    /// The per-dimension intervals.
    #[inline]
    pub fn dims(&self) -> &[Interval] {
        &self.dims
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndims(&self) -> usize {
        self.dims.len()
    }

    /// True if the section contains no elements.
    ///
    /// Note a zero-dimensional section is a scalar and is *not* empty.
    pub fn is_empty(&self) -> bool {
        self.dims.iter().any(Interval::is_empty)
    }

    /// True if every dimension is dense (stride 1).
    pub fn is_dense(&self) -> bool {
        self.dims.iter().all(Interval::is_dense)
    }

    /// Exact number of elements in the section.
    pub fn element_count(&self) -> u64 {
        if self.is_empty() {
            return 0;
        }
        self.dims.iter().map(Interval::count).product()
    }

    /// Size in bytes given the element width.
    pub fn byte_count(&self, elem_bytes: usize) -> u64 {
        self.element_count() * elem_bytes as u64
    }

    /// True if the point (one coordinate per dimension) lies in the section.
    ///
    /// # Panics
    /// Panics if `point.len() != self.ndims()`.
    pub fn contains_point(&self, point: &[i64]) -> bool {
        assert_eq!(point.len(), self.ndims(), "point dimensionality mismatch");
        !self.is_empty() && self.dims.iter().zip(point).all(|(d, &x)| d.contains(x))
    }

    /// True if `other` is entirely contained in `self`. Exact.
    pub fn contains_section(&self, other: &Section) -> bool {
        assert_eq!(
            self.ndims(),
            other.ndims(),
            "section dimensionality mismatch"
        );
        if other.is_empty() {
            return true;
        }
        if self.is_empty() {
            return false;
        }
        self.dims
            .iter()
            .zip(&other.dims)
            .all(|(a, b)| a.contains_interval(b))
    }

    /// Exact intersection (`INTERSECT` of the paper): the cartesian product
    /// of per-dimension intersections.
    ///
    /// # Panics
    /// Panics if dimensionalities differ.
    pub fn intersect(&self, other: &Section) -> Section {
        assert_eq!(
            self.ndims(),
            other.ndims(),
            "section dimensionality mismatch"
        );
        Section::new(
            self.dims
                .iter()
                .zip(&other.dims)
                .map(|(a, b)| a.intersect(b))
                .collect(),
        )
    }

    /// True if the sections share at least one element. Exact.
    pub fn overlaps(&self, other: &Section) -> bool {
        !self.intersect(other).is_empty()
    }

    /// The single-section hull (`UNION` merge of Havlak–Kennedy): smallest
    /// regular section containing both. Over-approximates whenever the true
    /// union is not a regular section (e.g. two disjoint boxes).
    ///
    /// For exact unions use [`crate::SectionSet`].
    pub fn hull(&self, other: &Section) -> Section {
        assert_eq!(
            self.ndims(),
            other.ndims(),
            "section dimensionality mismatch"
        );
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        Section::new(
            self.dims
                .iter()
                .zip(&other.dims)
                .map(|(a, b)| a.hull(b))
                .collect(),
        )
    }

    /// Exact subtraction `self \ other` for **dense** sections, returned as
    /// a list of disjoint dense sections (at most `2 * ndims` pieces).
    ///
    /// Uses the standard hyper-rectangle splitting: peel off the part of
    /// `self` outside `other` one dimension at a time.
    ///
    /// # Panics
    /// Panics if either section is non-dense or dimensionalities differ.
    pub fn subtract_dense(&self, other: &Section) -> Vec<Section> {
        assert_eq!(
            self.ndims(),
            other.ndims(),
            "section dimensionality mismatch"
        );
        assert!(
            self.is_dense() && other.is_dense(),
            "subtract_dense requires dense sections"
        );
        if self.is_empty() {
            return Vec::new();
        }
        let overlap = self.intersect(other);
        if overlap.is_empty() {
            return vec![self.clone()];
        }
        if other.contains_section(self) {
            return Vec::new();
        }
        let mut pieces = Vec::new();
        // `remaining` shrinks toward the overlap as we peel each dimension.
        let mut remaining = self.dims.clone();
        for d in 0..self.ndims() {
            let (left, right) = remaining[d].subtract_dense(&overlap.dims[d]);
            for part in [left, right] {
                if !part.is_empty() {
                    let mut dims = remaining.clone();
                    dims[d] = part;
                    pieces.push(Section::new(dims));
                }
            }
            remaining[d] = overlap.dims[d];
        }
        pieces
    }

    /// Iterate all points (row-major). For tests and tiny sections only.
    pub fn iter_points(&self) -> Box<dyn Iterator<Item = Vec<i64>> + '_> {
        if self.is_empty() {
            return Box::new(std::iter::empty());
        }
        if self.dims.is_empty() {
            return Box::new(std::iter::once(Vec::new()));
        }
        let head = self.dims[0];
        let tail = Section {
            dims: self.dims[1..].to_vec(),
        };
        Box::new(head.iter().flat_map(move |x| {
            let tail = tail.clone();
            tail.iter_points()
                .map(move |mut rest| {
                    rest.insert(0, x);
                    rest
                })
                .collect::<Vec<_>>()
        }))
    }
}

impl std::fmt::Display for Section {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            return write!(f, "∅");
        }
        write!(f, "(")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_and_counts() {
        let s = Section::whole(&[4, 5]);
        assert_eq!(s.element_count(), 20);
        assert_eq!(s.byte_count(4), 80);
        assert!(!s.is_empty());
    }

    #[test]
    fn whole_with_zero_extent_is_empty() {
        let s = Section::whole(&[4, 0]);
        assert!(s.is_empty());
        assert_eq!(s.element_count(), 0);
    }

    #[test]
    fn scalar_has_one_element() {
        let s = Section::scalar();
        assert_eq!(s.element_count(), 1);
        assert!(!s.is_empty());
        assert_eq!(s.ndims(), 0);
    }

    #[test]
    fn emptiness_canonicalization() {
        let s = Section::new(vec![Interval::dense(0, 5), Interval::empty()]);
        assert!(s.is_empty());
        assert!(s.dims().iter().all(Interval::is_empty));
        assert_eq!(s, Section::empty(2));
    }

    #[test]
    fn contains_point_2d() {
        let s = Section::dense(&[(0, 3), (2, 5)]);
        assert!(s.contains_point(&[0, 2]));
        assert!(s.contains_point(&[3, 5]));
        assert!(!s.contains_point(&[4, 2]));
        assert!(!s.contains_point(&[0, 1]));
    }

    #[test]
    fn intersect_2d() {
        let a = Section::dense(&[(0, 10), (0, 10)]);
        let b = Section::dense(&[(5, 15), (8, 20)]);
        let c = a.intersect(&b);
        assert_eq!(c, Section::dense(&[(5, 10), (8, 10)]));
        assert_eq!(c.element_count(), 6 * 3);
    }

    #[test]
    fn intersect_disjoint_in_one_dim_is_empty() {
        let a = Section::dense(&[(0, 10), (0, 3)]);
        let b = Section::dense(&[(0, 10), (4, 9)]);
        assert!(a.intersect(&b).is_empty());
        assert!(!a.overlaps(&b));
    }

    #[test]
    fn hull_covers_both() {
        let a = Section::dense(&[(0, 2), (0, 2)]);
        let b = Section::dense(&[(8, 9), (1, 4)]);
        let h = a.hull(&b);
        assert!(h.contains_section(&a));
        assert!(h.contains_section(&b));
        assert_eq!(h, Section::dense(&[(0, 9), (0, 4)]));
    }

    #[test]
    fn subtract_dense_interior_hole() {
        // 10x10 minus interior 4x4 leaves 100-16=84 elements in 4 pieces.
        let a = Section::dense(&[(0, 9), (0, 9)]);
        let b = Section::dense(&[(3, 6), (3, 6)]);
        let pieces = a.subtract_dense(&b);
        assert_eq!(pieces.len(), 4);
        let total: u64 = pieces.iter().map(Section::element_count).sum();
        assert_eq!(total, 84);
        // Pieces must be disjoint from b and from each other.
        for p in &pieces {
            assert!(!p.overlaps(&b));
        }
        for i in 0..pieces.len() {
            for j in (i + 1)..pieces.len() {
                assert!(!pieces[i].overlaps(&pieces[j]), "{i} vs {j}");
            }
        }
    }

    #[test]
    fn subtract_dense_disjoint_returns_self() {
        let a = Section::dense(&[(0, 4), (0, 4)]);
        let b = Section::dense(&[(10, 14), (0, 4)]);
        let pieces = a.subtract_dense(&b);
        assert_eq!(pieces, vec![a]);
    }

    #[test]
    fn subtract_dense_covered_returns_nothing() {
        let a = Section::dense(&[(2, 4), (2, 4)]);
        let b = Section::dense(&[(0, 9), (0, 9)]);
        assert!(a.subtract_dense(&b).is_empty());
    }

    #[test]
    fn subtract_dense_edge_overlap() {
        // Strip off the left 3 columns.
        let a = Section::dense(&[(0, 9), (0, 9)]);
        let b = Section::dense(&[(0, 9), (0, 2)]);
        let pieces = a.subtract_dense(&b);
        let total: u64 = pieces.iter().map(Section::element_count).sum();
        assert_eq!(total, 70);
    }

    #[test]
    fn display_formats() {
        let s = Section::dense(&[(0, 3), (1, 7)]);
        assert_eq!(s.to_string(), "([0:3], [1:7])");
        assert_eq!(Section::empty(2).to_string(), "∅");
    }

    #[test]
    fn iter_points_matches_count() {
        let s = Section::new(vec![Interval::new(0, 4, 2), Interval::dense(1, 3)]);
        let pts: Vec<_> = s.iter_points().collect();
        assert_eq!(pts.len() as u64, s.element_count());
        assert!(pts.contains(&vec![2, 2]));
        assert!(!pts.contains(&vec![1, 2]));
    }
}
