//! Property-based tests for the BRS algebra.
//!
//! These check the algebraic laws the data-usage analyzer relies on:
//! intersection exactness, hull supersetting, and exact disjoint-union
//! counting for dense sections.

use gpp_brs::{Interval, Section, SectionSet};
use proptest::prelude::*;

/// Strategy for arbitrary strided intervals over a small universe so that
/// brute-force enumeration stays cheap.
fn interval() -> impl Strategy<Value = Interval> {
    (0i64..40, 0i64..40, 1i64..6)
        .prop_map(|(lo, span, stride)| Interval::new(lo, lo + span, stride))
}

/// Strategy for dense 2-D sections.
fn dense_section2() -> impl Strategy<Value = Section> {
    ((0i64..20, 0i64..10), (0i64..20, 0i64..10))
        .prop_map(|((l0, s0), (l1, s1))| Section::dense(&[(l0, l0 + s0), (l1, l1 + s1)]))
}

fn members(i: &Interval) -> Vec<i64> {
    i.iter().collect()
}

proptest! {
    #[test]
    fn intersect_is_exact(a in interval(), b in interval()) {
        let c = a.intersect(&b);
        let sa = members(&a);
        let sb = members(&b);
        let expect: Vec<i64> = sa.iter().copied().filter(|x| sb.contains(x)).collect();
        prop_assert_eq!(members(&c), expect);
    }

    #[test]
    fn intersect_commutative(a in interval(), b in interval()) {
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
    }

    #[test]
    fn intersect_with_self_is_identity(a in interval()) {
        prop_assert_eq!(a.intersect(&a), a);
    }

    #[test]
    fn hull_is_superset(a in interval(), b in interval()) {
        let h = a.hull(&b);
        for x in a.iter().chain(b.iter()) {
            prop_assert!(h.contains(x), "hull {} missing {}", h, x);
        }
    }

    #[test]
    fn hull_commutative(a in interval(), b in interval()) {
        prop_assert_eq!(a.hull(&b), b.hull(&a));
    }

    #[test]
    fn hull_absorbs_intersection(a in interval(), b in interval()) {
        // a ∩ b ⊆ hull(a, b)
        let c = a.intersect(&b);
        let h = a.hull(&b);
        prop_assert!(h.contains_interval(&c));
    }

    #[test]
    fn contains_interval_matches_membership(a in interval(), b in interval()) {
        let expect = members(&b).iter().all(|&x| a.contains(x));
        prop_assert_eq!(a.contains_interval(&b), expect);
    }

    #[test]
    fn count_matches_iteration(a in interval()) {
        prop_assert_eq!(a.count() as usize, members(&a).len());
    }

    #[test]
    fn section_intersect_exact(a in dense_section2(), b in dense_section2()) {
        let c = a.intersect(&b);
        let mut n = 0u64;
        for x in 0..40i64 {
            for y in 0..40i64 {
                if a.contains_point(&[x, y]) && b.contains_point(&[x, y]) {
                    n += 1;
                }
            }
        }
        prop_assert_eq!(c.element_count(), n);
    }

    #[test]
    fn subtract_dense_partitions(a in dense_section2(), b in dense_section2()) {
        // a = (a \ b) ⊎ (a ∩ b), all pieces disjoint.
        let pieces = a.subtract_dense(&b);
        let inter = a.intersect(&b);
        let total: u64 =
            pieces.iter().map(Section::element_count).sum::<u64>() + inter.element_count();
        prop_assert_eq!(total, a.element_count());
        for p in &pieces {
            prop_assert!(!p.overlaps(&b));
            prop_assert!(a.contains_section(p));
        }
        for i in 0..pieces.len() {
            for j in (i + 1)..pieces.len() {
                prop_assert!(!pieces[i].overlaps(&pieces[j]));
            }
        }
    }

    #[test]
    fn set_union_counts_exactly(sections in prop::collection::vec(dense_section2(), 1..6)) {
        let mut set = SectionSet::empty(2);
        for s in &sections {
            set.insert(s.clone());
        }
        prop_assert!(set.is_exact());
        let mut n = 0u64;
        for x in 0..40i64 {
            for y in 0..40i64 {
                if sections.iter().any(|s| s.contains_point(&[x, y])) {
                    n += 1;
                }
            }
        }
        prop_assert_eq!(set.element_count(), n);
    }

    #[test]
    fn set_insert_idempotent(s in dense_section2()) {
        let mut set = SectionSet::empty(2);
        set.insert(s.clone());
        let once = set.element_count();
        set.insert(s);
        prop_assert_eq!(set.element_count(), once);
    }

    #[test]
    fn set_subtract_then_count(a in dense_section2(), b in dense_section2()) {
        let mut set = SectionSet::from_section(a.clone());
        set.subtract_section(&b);
        let expect = a.element_count() - a.intersect(&b).element_count();
        prop_assert_eq!(set.element_count(), expect);
    }

    #[test]
    fn set_covers_iff_no_remainder(a in dense_section2(), b in dense_section2()) {
        let set = SectionSet::from_section(a.clone());
        let covered = set.covers(&b);
        let expect = a.contains_section(&b);
        prop_assert_eq!(covered, expect);
    }

    #[test]
    fn set_union_order_independent(
        sections in prop::collection::vec(dense_section2(), 1..5),
    ) {
        let mut fwd = SectionSet::empty(2);
        for s in &sections {
            fwd.insert(s.clone());
        }
        let mut rev = SectionSet::empty(2);
        for s in sections.iter().rev() {
            rev.insert(s.clone());
        }
        prop_assert_eq!(fwd.element_count(), rev.element_count());
    }
}
