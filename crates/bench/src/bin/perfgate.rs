//! perfgate: the perf-regression gate over committed bench JSONs.
//!
//! ```text
//! perfgate <committed.json> <fresh.json> [--max-regress 0.25]
//! ```
//!
//! Compares a freshly measured bench run against the committed baseline
//! and exits non-zero when any arm/tier regressed by more than the
//! threshold (default 25%). Both harnesses report **min-of-N** numbers,
//! so a single noisy round cannot fake a regression — only a consistent
//! slowdown across every round of the fresh run trips the gate.
//!
//! Two schemas are understood, keyed by the top-level array name:
//!
//! * `arms`  (`BENCH_project.json`) — compares `min_s`, lower is
//!   better: regression = fresh/committed − 1;
//! * `tiers` (`BENCH_serve.json`) — compares `req_per_s`, higher is
//!   better: regression = committed/fresh − 1.
//!
//! An arm/tier present in the committed file but missing from the fresh
//! run is fatal: silently dropping a measurement is how a regression
//! hides. New arms in the fresh file are reported but not gated (they
//! have no baseline yet).
//!
//! The JSON reader below is deliberately minimal — just enough for the
//! bench harnesses' own renderer output — so the gate stays dependency-
//! free and usable from `ci.sh` without touching the network.

use std::process::ExitCode;

/// The subset of JSON the bench harnesses emit.
#[derive(Debug, Clone, PartialEq)]
enum Val {
    Num(f64),
    Str(String),
    Bool(bool),
    Null,
    Arr(Vec<Val>),
    Obj(Vec<(String, Val)>),
}

impl Val {
    fn get(&self, key: &str) -> Option<&Val> {
        match self {
            Val::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn num(&self, key: &str) -> Option<f64> {
        match self.get(key)? {
            Val::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn str_field(&self, key: &str) -> Option<&str> {
        match self.get(key)? {
            Val::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: &str) -> String {
        format!("JSON parse error at byte {}: {message}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Val, String> {
        match self.peek().ok_or_else(|| self.error("unexpected end"))? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Val::Str(self.string()?)),
            b't' => self.literal("true", Val::Bool(true)),
            b'f' => self.literal("false", Val::Bool(false)),
            b'n' => self.literal("null", Val::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, word: &str, val: Val) -> Result<Val, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(val)
        } else {
            Err(self.error(&format!("expected `{word}`")))
        }
    }

    fn number(&mut self) -> Result<Val, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Val::Num)
            .ok_or_else(|| self.error("bad number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.error("dangling escape"))?;
                    out.push(match esc {
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        other => other as char,
                    });
                    self.pos += 1;
                }
                Some(&b) => {
                    out.push(b as char);
                    self.pos += 1;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Val, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Val::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Val::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Val, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Val::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Val::Obj(fields));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }
}

fn parse(text: &str) -> Result<Val, String> {
    let mut p = Parser::new(text);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing garbage"));
    }
    Ok(v)
}

/// One comparable measurement: which field to read and which direction
/// is better, decided by the file's schema.
struct Schema {
    rows_key: &'static str,
    metric: &'static str,
    higher_is_better: bool,
}

fn schema_of(doc: &Val) -> Result<Schema, String> {
    if doc.get("arms").is_some() {
        Ok(Schema {
            rows_key: "arms",
            metric: "min_s",
            higher_is_better: false,
        })
    } else if doc.get("tiers").is_some() {
        Ok(Schema {
            rows_key: "tiers",
            metric: "req_per_s",
            higher_is_better: true,
        })
    } else {
        Err("unrecognized bench schema: no `arms` or `tiers` array".to_string())
    }
}

fn rows<'a>(doc: &'a Val, key: &str) -> Result<&'a [Val], String> {
    match doc.get(key) {
        Some(Val::Arr(items)) => Ok(items),
        _ => Err(format!("`{key}` is not an array")),
    }
}

fn gate(committed: &Val, fresh: &Val, max_regress: f64) -> Result<(), String> {
    let schema = schema_of(committed)?;
    let baseline = rows(committed, schema.rows_key)?;
    let measured = rows(fresh, schema.rows_key)?;
    let mut failures = Vec::new();

    for row in baseline {
        let name = row.str_field("name").ok_or("baseline row without a name")?;
        let base = row
            .num(schema.metric)
            .ok_or_else(|| format!("baseline `{name}` lacks {}", schema.metric))?;
        let fresh_row = measured
            .iter()
            .find(|r| r.str_field("name") == Some(name))
            .ok_or_else(|| format!("`{name}` missing from the fresh run — gate cannot pass"))?;
        let new = fresh_row
            .num(schema.metric)
            .ok_or_else(|| format!("fresh `{name}` lacks {}", schema.metric))?;
        let regress = if schema.higher_is_better {
            base / new - 1.0
        } else {
            new / base - 1.0
        };
        let verdict = if regress > max_regress { "FAIL" } else { "ok" };
        println!(
            "{verdict:<4} {name:<22} {metric}: committed {base:<12.6} fresh {new:<12.6} \
             regression {pct:+.1}%",
            metric = schema.metric,
            pct = regress * 100.0,
        );
        if regress > max_regress {
            failures.push(format!(
                "{name}: {:.1}% > {:.0}% allowed",
                regress * 100.0,
                max_regress * 100.0
            ));
        }
    }
    for row in measured {
        if let Some(name) = row.str_field("name") {
            if !baseline.iter().any(|r| r.str_field("name") == Some(name)) {
                println!("new  {name:<22} (no baseline; not gated)");
            }
        }
    }

    if failures.is_empty() {
        Ok(())
    } else {
        Err(format!("perf regression: {}", failures.join("; ")))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut max_regress = 0.25;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--max-regress" => {
                i += 1;
                max_regress = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(v) => v,
                    None => {
                        eprintln!("--max-regress needs a fraction (e.g. 0.25)");
                        return ExitCode::FAILURE;
                    }
                };
            }
            other => paths.push(other.to_string()),
        }
        i += 1;
    }
    if paths.len() != 2 {
        eprintln!("usage: perfgate <committed.json> <fresh.json> [--max-regress 0.25]");
        return ExitCode::FAILURE;
    }

    let read = |path: &str| -> Result<Val, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    let result = read(&paths[0]).and_then(|committed| {
        let fresh = read(&paths[1])?;
        println!("perfgate: {} vs {}", paths[0], paths[1]);
        gate(&committed, &fresh, max_regress)
    });
    match result {
        Ok(()) => {
            println!("perfgate OK (threshold {:.0}%)", max_regress * 100.0);
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("perfgate: {message}");
            ExitCode::FAILURE
        }
    }
}
