//! Regenerates the paper's tables and figures on the simulated testbed.
//!
//! Usage:
//!
//! ```text
//! repro <experiment>...        # table1 table2 fig2..fig12 ablations all
//! ```

use gpp_bench::eval::{evaluate_all, Evaluation, EVAL_SEED};
use gpp_bench::{ablation, render};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    args.retain(|a| a != "--json");
    let ids: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "fig2",
            "fig3",
            "fig4",
            "table1",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "table2",
            "ablations",
            "memtype",
            "crossmachine",
            "crossfleet",
        ]
    } else {
        args.iter().map(String::as_str).collect()
    };

    // The application experiments share one evaluation run (one machine,
    // one calibration — the paper's methodology).
    let needs_eval = ids.iter().any(|id| {
        matches!(
            *id,
            "table1"
                | "table2"
                | "fig5"
                | "fig6"
                | "fig7"
                | "fig8"
                | "fig9"
                | "fig10"
                | "fig11"
                | "fig12"
        )
    });
    let ev: Option<Evaluation> = needs_eval.then(|| {
        eprintln!("running full evaluation (10 cases) on the simulated ANL Eureka node...");
        evaluate_all(EVAL_SEED)
    });
    let ev = ev.as_ref();

    // Experiments are independent once the shared evaluation exists:
    // render them on the pool and print in request order.
    let outputs = gpp_par::par_map(ids.len(), |i| render_one(ids[i], json, ev));
    for out in outputs {
        println!("{out}");
    }
}

fn render_one(id: &str, json: bool, ev: Option<&Evaluation>) -> String {
    match id {
        "fig2" => render::fig2(EVAL_SEED),
        "fig3" => render::fig3(EVAL_SEED),
        "fig4" => render::fig4(EVAL_SEED),
        "table1" => render::table1(ev.expect("eval")),
        "table2" if json => {
            use grophecy::report::{speedup_json, Json};
            Json::Arr(
                ev.expect("eval")
                    .cases
                    .iter()
                    .map(|c| speedup_json(&c.speedup_report()))
                    .collect(),
            )
            .render()
        }
        "table2" => render::table2(ev.expect("eval")),
        "fig5" => render::fig5(ev.expect("eval")),
        "fig6" => render::fig6(ev.expect("eval")),
        "fig7" => render::fig_speedup_by_size(ev.expect("eval"), "CFD", "7"),
        "fig8" => render::fig_speedup_by_iters(ev.expect("eval"), "CFD", "233K", "8"),
        "fig9" => render::fig_speedup_by_size(ev.expect("eval"), "HotSpot", "9"),
        "fig10" => render::fig_speedup_by_iters(ev.expect("eval"), "HotSpot", "1024", "10"),
        "fig11" => render::fig_speedup_by_size(ev.expect("eval"), "SRAD", "11"),
        "fig12" => render::fig_speedup_by_iters(ev.expect("eval"), "SRAD", "4096", "12"),
        "ablations" => ablation::render(EVAL_SEED),
        "memtype" => render::memtype(EVAL_SEED),
        "crossmachine" => gpp_bench::eval::cross_machine(EVAL_SEED),
        "crossfleet" => {
            // The built-ins plus every committed `.gmach` datasheet —
            // including the multi-GPU machines, whose columns carry the
            // data-parallel split.
            let mut registry = grophecy::MachineRegistry::builtin();
            let dir = std::path::Path::new("fixtures/machines");
            if dir.is_dir() {
                registry
                    .load_dir(dir)
                    .expect("fixtures/machines should load");
            }
            gpp_bench::eval::cross_fleet(&registry, EVAL_SEED)
        }
        other => {
            eprintln!("unknown experiment `{other}`; known: fig2..fig12, table1, table2, ablations, memtype, crossfleet, all");
            std::process::exit(2);
        }
    }
}
