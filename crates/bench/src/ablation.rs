//! Ablation studies for the design decisions called out in DESIGN.md.

use gpp_datausage::analyze;
use gpp_pcie::{
    BusParams, BusSimulator, Calibrator, Direction, MemType, PiecewiseModel, SweepValidation,
};
use gpp_workloads::{paper_cases, srad::Srad};

/// D1 — linear (2-point) vs piecewise (30-point) PCIe model accuracy on a
/// held-out sweep. Returns `(linear_mean_err_pct, piecewise_mean_err_pct,
/// linear_points, piecewise_points)`.
pub fn pcie_model_ablation(seed: u64) -> (f64, f64, usize, usize) {
    use gpp_pcie::Bus;
    let mut bus = BusSimulator::new(BusParams::pcie_v1_x16(), seed);
    let linear = Calibrator::default().calibrate(&mut bus);
    let piecewise = PiecewiseModel::calibrate(
        &mut bus,
        Direction::HostToDevice,
        MemType::Pinned,
        0,
        29,
        10,
    );

    // Held-out validation points: odd sizes, not powers of two, above the
    // paper's "errors vanish above 1 KB" regime.
    let sizes = [3_000u64, 50_000, 777_777, 5 << 20, 123 << 20];
    let mut lin_pairs = Vec::new();
    let mut pw_pairs = Vec::new();
    for &bytes in &sizes {
        let meas: f64 = (0..10)
            .map(|_| bus.transfer(bytes, Direction::HostToDevice, MemType::Pinned))
            .sum::<f64>()
            / 10.0;
        lin_pairs.push((linear.h2d.predict(bytes), meas));
        pw_pairs.push((piecewise.predict(bytes), meas));
    }
    (
        gpp_pcie::mean_error_magnitude(&lin_pairs),
        gpp_pcie::mean_error_magnitude(&pw_pairs),
        2, // calibration points the linear model needed
        piecewise.knot_count(),
    )
}

/// D2 — projecting with the wrong memory type: how far off is a pinned
/// projection if the port actually uses pageable memory? Returns the mean
/// % error across the paper's workload transfer sizes.
pub fn memtype_ablation(seed: u64) -> f64 {
    use gpp_pcie::Bus;
    let mut bus = BusSimulator::new(BusParams::pcie_v1_x16(), seed);
    let pinned_model = Calibrator::default().calibrate(&mut bus);
    let mut pairs = Vec::new();
    for case in paper_cases() {
        let plan = analyze(&case.program, &case.hints);
        for t in plan.all() {
            let dir = match t.dir {
                gpp_datausage::TransferDir::ToDevice => Direction::HostToDevice,
                gpp_datausage::TransferDir::FromDevice => Direction::DeviceToHost,
            };
            let meas: f64 = (0..10)
                .map(|_| bus.transfer(t.bytes, dir, MemType::Pageable))
                .sum::<f64>()
                / 10.0;
            pairs.push((pinned_model.predict(t.bytes, dir), meas));
        }
    }
    gpp_pcie::mean_error_magnitude(&pairs)
}

/// D3 — per-array vs batched transfers: α savings for every paper case.
/// Returns `(case_label, separate_s, batched_s)` rows under the
/// calibrated linear model.
pub fn batching_ablation(seed: u64) -> Vec<(String, f64, f64)> {
    let mut bus = BusSimulator::new(BusParams::pcie_v1_x16(), seed);
    let model = Calibrator::default().calibrate(&mut bus);
    let predict = |plan: &gpp_datausage::TransferPlan| -> f64 {
        plan.all()
            .map(|t| {
                let dir = match t.dir {
                    gpp_datausage::TransferDir::ToDevice => Direction::HostToDevice,
                    gpp_datausage::TransferDir::FromDevice => Direction::DeviceToHost,
                };
                model.predict(t.bytes, dir)
            })
            .sum()
    };
    paper_cases()
        .into_iter()
        .map(|case| {
            let plan = analyze(&case.program, &case.hints);
            let label = format!("{} {}", case.app, case.dataset);
            (label, predict(&plan), predict(&plan.batched()))
        })
        .collect()
}

/// D5 — the temporaries hint: extra transfer seconds per SRAD size when
/// the hint is forgotten. Returns `(n, with_hint_s, without_hint_s)`.
pub fn hints_ablation(seed: u64) -> Vec<(usize, f64, f64)> {
    let mut bus = BusSimulator::new(BusParams::pcie_v1_x16(), seed);
    let model = Calibrator::default().calibrate(&mut bus);
    Srad::PAPER_SIZES
        .iter()
        .map(|&n| {
            let s = Srad { n };
            let with = analyze(&s.program(), &s.hints());
            let without = analyze(&s.program(), &gpp_datausage::Hints::new());
            let time = |plan: &gpp_datausage::TransferPlan| -> f64 {
                plan.all()
                    .map(|t| {
                        let dir = match t.dir {
                            gpp_datausage::TransferDir::ToDevice => Direction::HostToDevice,
                            gpp_datausage::TransferDir::FromDevice => Direction::DeviceToHost,
                        };
                        model.predict(t.bytes, dir)
                    })
                    .sum()
            };
            (n, time(&with), time(&without))
        })
        .collect()
}

/// The §V-A model-validation headline: full pinned sweep errors after a
/// fresh calibration (used by the `ablations` report and benches).
pub fn sweep_errors(seed: u64) -> (f64, f64) {
    let mut bus = BusSimulator::new(BusParams::pcie_v1_x16(), seed);
    let model = Calibrator::default().calibrate(&mut bus);
    let h =
        SweepValidation::paper_sweep(&mut bus, &model, Direction::HostToDevice, MemType::Pinned);
    let d =
        SweepValidation::paper_sweep(&mut bus, &model, Direction::DeviceToHost, MemType::Pinned);
    (h.mean_error(), d.mean_error())
}

/// Renders every ablation as text.
pub fn render(seed: u64) -> String {
    let mut s = String::new();
    let (lin, pw, lin_pts, pw_pts) = pcie_model_ablation(seed);
    s.push_str("ABLATION D1 — linear vs piecewise PCIe model (held-out sizes)\n");
    s.push_str(&format!(
        "  linear ({lin_pts} calibration points): {lin:.2}% mean error\n  piecewise ({pw_pts} points): {pw:.2}% mean error\n",
    ));

    s.push_str("ABLATION D2 — pinned-calibrated model predicting pageable transfers\n");
    s.push_str(&format!("  mean error: {:.0}%\n", memtype_ablation(seed)));

    s.push_str("ABLATION D3 — per-array vs batched transfers (predicted seconds)\n");
    for (label, sep, bat) in batching_ablation(seed) {
        s.push_str(&format!(
            "  {:<22} separate {:>9.3} ms   batched {:>9.3} ms   saved {:>5.1}%\n",
            label,
            sep * 1e3,
            bat * 1e3,
            (sep - bat) / sep * 100.0
        ));
    }

    s.push_str("ABLATION D5 — SRAD temporaries hint\n");
    for (n, with, without) in hints_ablation(seed) {
        s.push_str(&format!(
            "  {n}x{n}: with hint {:.2} ms, without {:.2} ms (+{:.0}%)\n",
            with * 1e3,
            without * 1e3,
            (without - with) / with * 100.0
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_model_is_nearly_as_good_as_piecewise() {
        // The paper's claim: two calibration points suffice.
        let (lin, pw, lin_pts, pw_pts) = pcie_model_ablation(5);
        assert!(lin < pw + 4.0, "linear {lin}% vs piecewise {pw}%");
        assert!(lin < 8.0);
        assert!(lin_pts < pw_pts);
    }

    #[test]
    fn wrong_memtype_assumption_is_costly() {
        // Pageable is ~40-80% slower: assuming pinned badly underpredicts.
        let err = memtype_ablation(5);
        assert!(err > 20.0, "err {err}");
    }

    #[test]
    fn batching_saves_little_on_large_transfers() {
        // The paper calls batching "a minor performance benefit": α is
        // microseconds, the workloads move megabytes. Only the tiny
        // HotSpot 64x64 case (tens-of-KB transfers) sees a double-digit
        // saving.
        for (label, sep, bat) in batching_ablation(5) {
            let saved = (sep - bat) / sep;
            assert!(bat <= sep);
            if sep > 1e-3 {
                assert!(saved < 0.05, "{label}: saved {saved}");
            } else {
                assert!(saved < 0.35, "{label}: saved {saved}");
            }
        }
    }

    #[test]
    fn forgetting_the_temporary_hint_costs_transfer_time() {
        for (_, with, without) in hints_ablation(5) {
            assert!(without > with * 1.3);
        }
    }
}
