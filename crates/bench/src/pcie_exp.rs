//! The synthetic PCIe experiments (Figures 2, 3, 4 — §III-C, §V-A).

use gpp_pcie::{BusParams, BusSimulator, Calibrator, Direction, MemType, SweepValidation};

/// One row of the Figure 2 sweep.
pub struct Fig2Row {
    /// Transfer size.
    pub bytes: u64,
    /// Mean measured pinned H2D time, seconds.
    pub pinned_h2d: f64,
    /// Mean measured pinned D2H time.
    pub pinned_d2h: f64,
    /// Mean measured pageable H2D time.
    pub pageable_h2d: f64,
    /// Mean measured pageable D2H time.
    pub pageable_d2h: f64,
    /// Linear-model prediction, H2D (pinned).
    pub model_h2d: f64,
    /// Linear-model prediction, D2H (pinned).
    pub model_d2h: f64,
}

/// Figure 2's full dataset.
pub struct Fig2Data {
    /// Rows for every power-of-two size, 1 B ..= 512 MB.
    pub rows: Vec<Fig2Row>,
}

/// Measures the Figure 2 sweep: 10 runs per point, plus the calibrated
/// model overlay.
pub fn fig2_data(seed: u64) -> Fig2Data {
    let mut bus = BusSimulator::new(BusParams::pcie_v1_x16(), seed);
    let model = Calibrator::default().calibrate(&mut bus);
    let mean = |bus: &mut BusSimulator, bytes: u64, dir, mem| -> f64 {
        use gpp_pcie::Bus;
        (0..10).map(|_| bus.transfer(bytes, dir, mem)).sum::<f64>() / 10.0
    };
    let rows = (0..=29)
        .map(|p| {
            let bytes = 1u64 << p;
            Fig2Row {
                bytes,
                pinned_h2d: mean(&mut bus, bytes, Direction::HostToDevice, MemType::Pinned),
                pinned_d2h: mean(&mut bus, bytes, Direction::DeviceToHost, MemType::Pinned),
                pageable_h2d: mean(&mut bus, bytes, Direction::HostToDevice, MemType::Pageable),
                pageable_d2h: mean(&mut bus, bytes, Direction::DeviceToHost, MemType::Pageable),
                model_h2d: model.h2d.predict(bytes),
                model_d2h: model.d2h.predict(bytes),
            }
        })
        .collect();
    Fig2Data { rows }
}

/// Figure 4's dataset: error magnitude per size, both directions.
pub struct Fig4Data {
    /// `(bytes, h2d error %, d2h error %)`.
    pub rows: Vec<(u64, f64, f64)>,
    /// Mean error magnitude H2D.
    pub mean_h2d: f64,
    /// Mean error magnitude D2H.
    pub mean_d2h: f64,
    /// Max error magnitude H2D.
    pub max_h2d: f64,
    /// Max error magnitude D2H.
    pub max_d2h: f64,
}

/// Runs the Figure 4 validation: calibrate, then sweep and compare.
pub fn fig4_data(seed: u64) -> Fig4Data {
    let mut bus = BusSimulator::new(BusParams::pcie_v1_x16(), seed);
    let model = Calibrator::default().calibrate(&mut bus);
    let h2d =
        SweepValidation::paper_sweep(&mut bus, &model, Direction::HostToDevice, MemType::Pinned);
    let d2h =
        SweepValidation::paper_sweep(&mut bus, &model, Direction::DeviceToHost, MemType::Pinned);
    let rows = h2d
        .points
        .iter()
        .zip(&d2h.points)
        .map(|(a, b)| (a.bytes, a.error(), b.error()))
        .collect();
    Fig4Data {
        rows,
        mean_h2d: h2d.mean_error(),
        mean_d2h: d2h.mean_error(),
        max_h2d: h2d.max_error(),
        max_d2h: d2h.max_error(),
    }
}

/// The §V-A repeatability experiment: use one sweep's measurements to
/// predict a second sweep on the same machine; returns the mean error
/// magnitudes (h2d, d2h). This bounds how much of the model error is
/// inherent measurement variation.
pub fn repeatability(seed: u64) -> (f64, f64) {
    use gpp_pcie::Bus;
    let mut bus = BusSimulator::new(BusParams::pcie_v1_x16(), seed);
    let mut err = [0.0f64; 2];
    for (k, dir) in Direction::ALL.into_iter().enumerate() {
        let mut pairs = Vec::new();
        for p in 0..=29 {
            let bytes = 1u64 << p;
            let first: f64 = (0..10)
                .map(|_| bus.transfer(bytes, dir, MemType::Pinned))
                .sum::<f64>()
                / 10.0;
            let second: f64 = (0..10)
                .map(|_| bus.transfer(bytes, dir, MemType::Pinned))
                .sum::<f64>()
                / 10.0;
            pairs.push((first, second));
        }
        err[k] = gpp_pcie::mean_error_magnitude(&pairs);
    }
    (err[0], err[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_reproduces_paper_shape() {
        let d = fig2_data(11);
        assert_eq!(d.rows.len(), 30);
        // Pinned beats pageable at large sizes...
        let big = d.rows.last().unwrap();
        assert!(big.pageable_h2d > big.pinned_h2d * 1.2);
        assert!(big.pageable_d2h > big.pinned_d2h * 1.2);
        // ...but small pageable H2D transfers win (paper Fig. 3).
        let small = &d.rows[8]; // 256 B
        assert!(small.pageable_h2d < small.pinned_h2d);
        // The model overlay tracks the pinned measurements at large sizes.
        assert!((big.model_h2d / big.pinned_h2d - 1.0).abs() < 0.1);
    }

    #[test]
    fn fig4_errors_match_paper_band() {
        // §V-A: mean errors 2.0% / 0.8%, max 6.4% / 3.3%. Our simulated
        // day lands in the same band (a few percent mean).
        let d = fig4_data(11);
        assert!(d.mean_h2d < 6.0, "mean h2d {}", d.mean_h2d);
        assert!(d.mean_d2h < 6.0, "mean d2h {}", d.mean_d2h);
        assert!(d.max_h2d < 40.0);
    }

    #[test]
    fn repeatability_bounds_inherent_variation() {
        let (h, d) = repeatability(11);
        assert!(h < 5.0, "h2d repeatability {h}");
        assert!(d < 5.0, "d2h repeatability {d}");
    }
}
