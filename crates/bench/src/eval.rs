//! The full evaluation run: all applications × data sizes on the
//! simulated Argonne node (Tables I & II, Figures 5–12).

use gpp_workloads::{paper_cases, WorkloadCase};
use grophecy::machine::MachineConfig;
use grophecy::measurement::{measure, AppMeasurement};
use grophecy::projector::{AppProjection, Grophecy};
use grophecy::speedup::{SpeedupReport, SpeedupSeries};
use grophecy::MachineRegistry;

/// The seed every headline experiment uses ("the day we measured").
pub const EVAL_SEED: u64 = 2013;

/// One application × data-size result.
pub struct CaseResult {
    /// Application name.
    pub app: &'static str,
    /// Data-size label.
    pub dataset: String,
    /// The GROPHECY++ projection.
    pub projection: AppProjection,
    /// The simulated-hardware measurement.
    pub measurement: AppMeasurement,
}

impl CaseResult {
    /// The Table II row at one iteration.
    pub fn speedup_report(&self) -> SpeedupReport {
        SpeedupReport::build(
            self.app,
            &self.dataset,
            &self.projection,
            &self.measurement,
            1,
        )
    }

    /// An iteration sweep (Figures 8/10/12).
    pub fn sweep(&self, iters: impl IntoIterator<Item = u32>) -> SpeedupSeries {
        SpeedupSeries::sweep(
            self.app,
            &self.dataset,
            &self.projection,
            &self.measurement,
            iters,
        )
    }
}

/// The whole evaluation.
pub struct Evaluation {
    /// The modeled machine.
    pub machine: MachineConfig,
    /// All ten cases, Table I order.
    pub cases: Vec<CaseResult>,
}

/// Runs the complete evaluation: calibrate GROPHECY++ once on the
/// machine, then project + measure every workload case.
pub fn evaluate_all(seed: u64) -> Evaluation {
    let machine = MachineConfig::anl_eureka_node(seed);
    let mut node = machine.node();
    let gro = Grophecy::calibrate(&machine, &mut node);
    let cases_in = paper_cases();
    // Projections are pure and independent — fan them out on the shared
    // pool. Measurements consume the node's RNG stream, so they run
    // serially afterwards, in Table I order, keeping every sampled value
    // identical to the sequential evaluation.
    let projections = gpp_par::par_map(cases_in.len(), |i| {
        gro.project(&cases_in[i].program, &cases_in[i].hints)
    });
    let cases = cases_in
        .into_iter()
        .zip(projections)
        .map(
            |(
                WorkloadCase {
                    app,
                    dataset,
                    program,
                    hints: _,
                },
                projection,
            )| {
                let measurement = measure(&mut node, &program, &projection);
                CaseResult {
                    app,
                    dataset,
                    projection,
                    measurement,
                }
            },
        )
        .collect();
    Evaluation { machine, cases }
}

impl Evaluation {
    /// Finds a case by app name and dataset substring.
    pub fn case(&self, app: &str, dataset: &str) -> &CaseResult {
        self.cases
            .iter()
            .find(|c| c.app == app && c.dataset.contains(dataset))
            .unwrap_or_else(|| panic!("no case {app}/{dataset}"))
    }

    /// Average error in the predicted speedup, weighting each application
    /// equally (Table II's bottom row), for a chosen predictor.
    pub fn average_error_by_app(&self, f: impl Fn(&SpeedupReport) -> f64) -> f64 {
        let apps = ["CFD", "HotSpot", "SRAD", "Stassuij"];
        let mut total = 0.0;
        for app in apps {
            let errs: Vec<f64> = self
                .cases
                .iter()
                .filter(|c| c.app == app)
                .map(|c| f(&c.speedup_report()))
                .collect();
            total += errs.iter().sum::<f64>() / errs.len() as f64;
        }
        total / apps.len() as f64
    }

    /// Average error weighting each data set equally (the other Table II
    /// average).
    pub fn average_error_by_dataset(&self, f: impl Fn(&SpeedupReport) -> f64) -> f64 {
        let errs: Vec<f64> = self.cases.iter().map(|c| f(&c.speedup_report())).collect();
        errs.iter().sum::<f64>() / errs.len() as f64
    }
}

/// Cross-machine comparison (paper §VII: "validate our model on a wider
/// range of ... hardware systems"): run the projection for the paper's
/// node and a PCIe v2 + GT200 node, and report how each workload's
/// projected bottleneck shifts.
pub fn cross_machine(seed: u64) -> String {
    cross_fleet(&MachineRegistry::builtin(), seed)
}

/// Mirrors `gpp lint --fix`: apply the linter's fix-its until quiescent.
fn lint_fixpoint(src: &str) -> (String, usize) {
    let cfg = gpp_lint::LintConfig::new();
    let mut cur = src.to_string();
    let mut total = 0usize;
    for _ in 0..16 {
        let report = gpp_lint::lint_source(&cur, "case.gsk", &cfg);
        let (next, n) = gpp_lint::apply_fixes(&cur, &report.diagnostics);
        if n == 0 {
            break;
        }
        cur = next;
        total += n;
    }
    (cur, total)
}

/// [`cross_machine`] over an arbitrary fleet: one column per registered
/// machine, in registry (name) order. Each cell also reports `hr` — the
/// transfer headroom the linter's fix-its would recover on that machine
/// (0.00 when the schedule is already optimal) — and `ov`, the
/// overlap-vs-serial delta a 4-chunk pipelined schedule would realize.
/// Multi-device machines append a `splitD` column with the data-parallel
/// split's straggler-bound total.
pub fn cross_fleet(registry: &MachineRegistry, seed: u64) -> String {
    use gpp_datausage::Hints;
    use std::fmt::Write as _;
    let machines: Vec<MachineConfig> = registry.iter().map(|m| m.clone().with_seed(seed)).collect();
    let cases = paper_cases();
    // The fix-it rewrite is machine-independent: compute it once per case.
    let optimized: Vec<_> = cases
        .iter()
        .map(|c| {
            let (fixed, n) = lint_fixpoint(&gpp_skeleton::text::to_text(&c.program));
            if n == 0 {
                return None;
            }
            gpp_skeleton::text::parse(&fixed).ok()
        })
        .collect();
    let mut rows: Vec<Vec<String>> = Vec::new();
    for m in &machines {
        let mut node = m.node();
        let gro = Grophecy::calibrate(m, &mut node);
        let projs = gpp_par::par_map(cases.len(), |i| {
            gro.project(&cases[i].program, &cases[i].hints)
        });
        for (k, (case, proj)) in cases.iter().zip(&projs).enumerate() {
            if rows.len() <= k {
                rows.push(vec![format!("{:<9} {:>14}", case.app, case.dataset)]);
            }
            let headroom = optimized[k].as_ref().map_or(0.0, |opt| {
                let w = gro
                    .project(&case.program, &Hints::for_program(&case.program))
                    .total_time(1);
                let o = gro.project(opt, &Hints::for_program(opt)).total_time(1);
                (w - o).max(0.0)
            });
            let mut cell = format!(
                "{}: {:>8.2}ms kern + {:>8.2}ms xfer ({:>2.0}%) hr {:>6.2}ms",
                m.id,
                proj.kernel_time * 1e3,
                proj.transfer_time * 1e3,
                100.0 * proj.transfer_time / proj.total_time(1),
                headroom * 1e3
            );
            // Overlap-vs-serial delta: what pipelining the whole transfer
            // volume against the compute in 4 chunks would save over the
            // serial schedule.
            let serial = proj.kernel_time + proj.transfer_time;
            let overlapped = gpp_pcie::pipelined_window(proj.transfer_time, proj.kernel_time, 4);
            let _ = write!(cell, " ov {:>6.2}ms", (serial - overlapped) * 1e3);
            if let Some(mg) = &proj.multi_gpu {
                let _ = write!(
                    cell,
                    " split{} {:>8.2}ms",
                    mg.device_count(),
                    mg.total_time(1) * 1e3
                );
            }
            rows[k].push(cell);
        }
    }
    let mut s = String::new();
    let names: Vec<String> = machines
        .iter()
        .map(|m| format!("{} ({})", m.gpu_spec.name, m.id))
        .collect();
    let _ = writeln!(s, "CROSS-MACHINE PROJECTION — {}", names.join(" vs "));
    for r in rows {
        let _ = writeln!(s, "{}  | {}", r[0], r[1..].join(" | "));
    }
    s.push_str(
        "faster links shrink the transfer share, but it stays substantial —
the paper's conclusion survives a hardware generation.
",
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluation_produces_ten_cases() {
        let ev = evaluate_all(EVAL_SEED);
        assert_eq!(ev.cases.len(), 10);
    }

    #[test]
    fn cross_machine_report_covers_everything() {
        let s = cross_machine(EVAL_SEED);
        assert!(s.contains("Quadro FX 5600 (eureka)") && s.contains("Tesla C1060 (v2)"));
        assert_eq!(s.lines().count(), 1 + 10 + 2);
    }

    #[test]
    fn multi_device_machines_gain_a_split_column() {
        let mut registry = MachineRegistry::builtin();
        let mut dual = grophecy::MachineConfig::anl_eureka_node(0);
        dual.id = "dual".to_string();
        dual.devices.push(grophecy::machine::DeviceLink {
            id: 1,
            bus: gpp_pcie::BusParams::pcie_v2_x16(),
        });
        registry.insert(dual);
        let s = cross_fleet(&registry, EVAL_SEED);
        let row = s.lines().nth(1).unwrap();
        let dual_cell = row.split(" | ").find(|c| c.starts_with("dual:")).unwrap();
        assert!(dual_cell.contains(" split2 "), "{dual_cell}");
        assert!(dual_cell.contains(" ov "), "{dual_cell}");
        // Single-device columns carry the overlap delta but no split.
        let eureka = row.split(" | ").find(|c| c.starts_with("eureka:")).unwrap();
        assert!(
            eureka.contains(" ov ") && !eureka.contains("split"),
            "{eureka}"
        );
    }

    #[test]
    fn cross_fleet_grows_a_column_per_registered_machine() {
        let mut registry = MachineRegistry::builtin();
        let mut third = grophecy::MachineConfig::anl_eureka_node(0);
        third.id = "copy".to_string();
        registry.insert(third);
        let s = cross_fleet(&registry, EVAL_SEED);
        let row = s.lines().nth(1).unwrap();
        assert_eq!(row.matches(" | ").count(), 3, "{row}");
        assert!(row.contains("copy:") && row.contains("eureka:") && row.contains("v2:"));
        // The copy is eureka under another name: identical projections.
        let eureka = row.split(" | ").find(|c| c.starts_with("eureka:")).unwrap();
        let copy = row.split(" | ").find(|c| c.starts_with("copy:")).unwrap();
        assert_eq!(
            eureka.trim_start_matches("eureka:"),
            copy.trim_start_matches("copy:")
        );
    }
}
