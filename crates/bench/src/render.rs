//! Text rendering of every table and figure.

use crate::eval::Evaluation;
use crate::pcie_exp;
use gpp_pcie::error_magnitude;

/// Renders Table I: measured kernel/transfer times, percent transfer,
/// transfer sizes.
pub fn table1(ev: &Evaluation) -> String {
    let mut s = String::new();
    s.push_str("TABLE I — measured kernel & data transfer times (simulated testbed)\n");
    s.push_str(&format!(
        "{:<9} {:>12} {:>11} {:>12} {:>9} {:>10} {:>11}\n",
        "App", "Data Size", "Kernel(ms)", "Transfer(ms)", "%Transfer", "Input(MB)", "Output(MB)"
    ));
    for c in &ev.cases {
        let m = &c.measurement;
        let p = &c.projection.plan;
        s.push_str(&format!(
            "{:<9} {:>12} {:>11.2} {:>12.2} {:>9.0} {:>10.1} {:>11.1}\n",
            c.app,
            c.dataset,
            m.kernel_time * 1e3,
            m.transfer_time * 1e3,
            m.percent_transfer(),
            p.h2d_bytes() as f64 / (1 << 20) as f64,
            p.d2h_bytes() as f64 / (1 << 20) as f64,
        ));
    }
    s
}

/// Renders Table II: speedup-prediction error for the three predictors.
pub fn table2(ev: &Evaluation) -> String {
    let mut s = String::new();
    s.push_str("TABLE II — error magnitude of the predicted GPU speedup\n");
    s.push_str(&format!(
        "{:<9} {:>12} {:>12} {:>14} {:>18} {:>9} {:>9}\n",
        "App", "Data Set", "KernelOnly%", "TransferOnly%", "Kernel+Transfer%", "Meas.x", "Pred.x"
    ));
    for c in &ev.cases {
        let r = c.speedup_report();
        s.push_str(&format!(
            "{:<9} {:>12} {:>12.0} {:>14.0} {:>18.0} {:>9.2} {:>9.2}\n",
            c.app,
            c.dataset,
            r.error_kernel_only(),
            r.error_transfer_only(),
            r.error_combined(),
            r.measured,
            r.predicted_combined,
        ));
    }
    s.push_str(&format!(
        "{:<22} {:>12.0} {:>14.0} {:>18.0}\n",
        "Average (data sets)",
        ev.average_error_by_dataset(|r| r.error_kernel_only()),
        ev.average_error_by_dataset(|r| r.error_transfer_only()),
        ev.average_error_by_dataset(|r| r.error_combined()),
    ));
    s.push_str(&format!(
        "{:<22} {:>12.0} {:>14.0} {:>18.0}\n",
        "Average (applications)",
        ev.average_error_by_app(|r| r.error_kernel_only()),
        ev.average_error_by_app(|r| r.error_transfer_only()),
        ev.average_error_by_app(|r| r.error_combined()),
    ));
    s
}

/// Renders Figure 2: transfer time vs size, pinned & pageable, both
/// directions, with the linear-model overlay.
pub fn fig2(seed: u64) -> String {
    let d = pcie_exp::fig2_data(seed);
    let mut s = String::new();
    s.push_str("FIGURE 2 — transfer time (us) vs size; measured + model prediction\n");
    s.push_str(&format!(
        "{:>10} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
        "bytes", "pin-h2d", "pin-d2h", "page-h2d", "page-d2h", "model-h2d", "model-d2h"
    ));
    for row in &d.rows {
        s.push_str(&format!(
            "{:>10} {:>12.2} {:>12.2} {:>12.2} {:>12.2} {:>12.2} {:>12.2}\n",
            row.bytes,
            row.pinned_h2d * 1e6,
            row.pinned_d2h * 1e6,
            row.pageable_h2d * 1e6,
            row.pageable_d2h * 1e6,
            row.model_h2d * 1e6,
            row.model_d2h * 1e6,
        ));
    }
    s
}

/// Renders Figure 3: pinned-over-pageable speedup vs size.
pub fn fig3(seed: u64) -> String {
    let d = pcie_exp::fig2_data(seed);
    let mut s = String::new();
    s.push_str("FIGURE 3 — speedup of pinned over pageable transfers\n");
    s.push_str(&format!("{:>10} {:>10} {:>10}\n", "bytes", "h2d", "d2h"));
    for row in &d.rows {
        s.push_str(&format!(
            "{:>10} {:>10.2} {:>10.2}\n",
            row.bytes,
            row.pageable_h2d / row.pinned_h2d,
            row.pageable_d2h / row.pinned_d2h,
        ));
    }
    s
}

/// Renders Figure 4: model error magnitude per transfer size.
pub fn fig4(seed: u64) -> String {
    let d = pcie_exp::fig4_data(seed);
    let mut s = String::new();
    s.push_str("FIGURE 4 — |error| of the transfer-time model per size (pinned)\n");
    s.push_str(&format!(
        "{:>10} {:>10} {:>10}\n",
        "bytes", "h2d err%", "d2h err%"
    ));
    for (bytes, e_h2d, e_d2h) in &d.rows {
        s.push_str(&format!("{bytes:>10} {e_h2d:>10.2} {e_d2h:>10.2}\n"));
    }
    s.push_str(&format!(
        "mean: h2d {:.2}%  d2h {:.2}%   max: h2d {:.2}%  d2h {:.2}%\n",
        d.mean_h2d, d.mean_d2h, d.max_h2d, d.max_d2h
    ));
    s
}

/// Renders Figure 5: predicted vs measured time for every application
/// transfer.
pub fn fig5(ev: &Evaluation) -> String {
    let mut s = String::new();
    s.push_str("FIGURE 5 — predicted vs measured time for each transfer (ms)\n");
    s.push_str(&format!(
        "{:<9} {:>12} {:<14} {:>10} {:>10} {:>8}\n",
        "App", "Data Size", "Array", "Meas(ms)", "Pred(ms)", "Err%"
    ));
    let mut errs = Vec::new();
    for c in &ev.cases {
        for ((t, meas), pred) in c
            .measurement
            .transfer_times
            .iter()
            .zip(&c.projection.transfer_times)
        {
            let err = error_magnitude(*pred, *meas);
            errs.push(err);
            s.push_str(&format!(
                "{:<9} {:>12} {:<14} {:>10.3} {:>10.3} {:>8.1}\n",
                c.app,
                c.dataset,
                t.name,
                meas * 1e3,
                pred * 1e3,
                err
            ));
        }
    }
    s.push_str(&format!(
        "average prediction error across all transfers: {:.1}%\n",
        errs.iter().sum::<f64>() / errs.len() as f64
    ));
    s
}

/// Renders Figure 6: per-case transfer error vs kernel error.
pub fn fig6(ev: &Evaluation) -> String {
    let mut s = String::new();
    s.push_str("FIGURE 6 — transfer vs kernel prediction error per case\n");
    s.push_str(&format!(
        "{:<9} {:>12} {:>14} {:>14}\n",
        "App", "Data Size", "KernelErr%", "TransferErr%"
    ));
    for c in &ev.cases {
        let r = c.speedup_report();
        s.push_str(&format!(
            "{:<9} {:>12} {:>14.1} {:>14.1}\n",
            c.app, c.dataset, r.kernel_time_error, r.transfer_time_error
        ));
    }
    s
}

/// Renders Figures 7/9/11: speedup across data sizes for one application.
pub fn fig_speedup_by_size(ev: &Evaluation, app: &str, fig: &str) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "FIGURE {fig} — {app}: measured & predicted GPU speedup by data size\n"
    ));
    s.push_str(&format!(
        "{:>12} {:>9} {:>16} {:>19}\n",
        "Data Size", "Measured", "Pred(w/transfer)", "Pred(w/o transfer)"
    ));
    for c in ev.cases.iter().filter(|c| c.app == app) {
        let r = c.speedup_report();
        s.push_str(&format!(
            "{:>12} {:>9.2} {:>16.2} {:>19.2}\n",
            c.dataset, r.measured, r.predicted_combined, r.predicted_kernel_only
        ));
    }
    s
}

/// Renders Figures 8/10/12: speedup vs iteration count for one case.
pub fn fig_speedup_by_iters(ev: &Evaluation, app: &str, dataset: &str, fig: &str) -> String {
    let c = ev.case(app, dataset);
    let series = c.sweep([1, 2, 4, 8, 16, 32, 64, 128, 256]);
    let mut s = String::new();
    s.push_str(&format!(
        "FIGURE {fig} — {app} {dataset}: speedup vs iteration count\n"
    ));
    s.push_str(&format!(
        "{:>7} {:>9} {:>16} {:>19}\n",
        "iters", "Measured", "Pred(w/transfer)", "Pred(w/o transfer)"
    ));
    for p in &series.points {
        s.push_str(&format!(
            "{:>7} {:>9.2} {:>16.2} {:>19.2}\n",
            p.iters, p.measured, p.with_transfer, p.without_transfer
        ));
    }
    let lim = grophecy::speedup::SpeedupSeries::limit(&c.projection, &c.measurement);
    s.push_str(&format!(
        "limit:  measured {:.2}  predicted {:.2}  (error {:.1}%)\n",
        lim.measured,
        lim.with_transfer,
        error_magnitude(lim.with_transfer, lim.measured)
    ));
    if let Some(n) = series.twice_as_accurate_until() {
        s.push_str(&format!(
            "transfer-aware prediction ≥2x more accurate up to {n} iterations\n"
        ));
    }
    s
}

/// Renders the §VII future-work experiment: the pinned/pageable +
/// allocation-overhead tradeoff per workload.
pub fn memtype(seed: u64) -> String {
    use gpp_pcie::{BusParams, BusSimulator};
    use grophecy::memtype::DualCalibration;
    let mut bus = BusSimulator::new(BusParams::pcie_v1_x16(), seed);
    let cal = DualCalibration::run(&mut bus);
    let mut s = String::new();
    s.push_str("MEMTYPE TRADEOFF (paper §VII future work, implemented)\n");
    s.push_str(&format!(
        "{:<9} {:>12} {:>11} {:>11} {:>12} {:>12} {:>10}\n",
        "App", "Data Size", "pin xfer", "page xfer", "pin alloc", "page alloc", "crossover"
    ));
    for case in gpp_workloads::paper_cases() {
        let plan = gpp_datausage::analyze(&case.program, &case.hints);
        let r = cal.explore(&plan);
        s.push_str(&format!(
            "{:<9} {:>12} {:>9.2}ms {:>9.2}ms {:>10.2}ms {:>10.2}ms {:>10}\n",
            case.app,
            case.dataset,
            r.pinned_transfer * 1e3,
            r.pageable_transfer * 1e3,
            r.pinned_alloc * 1e3,
            r.pageable_alloc * 1e3,
            match r.pageable_wins_below_sessions {
                Some(u32::MAX) => "always page".to_string(),
                Some(n) => format!("{n} sess."),
                None => "always pin".to_string(),
            }
        ));
    }
    s.push_str(
        "crossover = offload sessions below which pageable memory wins\n(allocation cost amortizes; the paper's pinned assumption suits repeated offloads).\n",
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{evaluate_all, EVAL_SEED};

    #[test]
    fn tables_render_all_cases() {
        let ev = evaluate_all(EVAL_SEED);
        let t1 = table1(&ev);
        assert_eq!(t1.lines().count(), 2 + 10);
        assert!(t1.contains("CFD") && t1.contains("Stassuij"));
        let t2 = table2(&ev);
        assert!(t2.contains("Average (applications)"));
    }

    #[test]
    fn memtype_renders_all_cases() {
        let m = memtype(EVAL_SEED);
        assert!(m.contains("Stassuij") && m.contains("crossover"));
        assert_eq!(m.lines().count(), 2 + 10 + 2);
    }

    #[test]
    fn figures_render() {
        let ev = evaluate_all(EVAL_SEED);
        assert!(fig5(&ev).contains("average prediction error"));
        assert!(fig6(&ev).contains("KernelErr%"));
        assert!(fig_speedup_by_size(&ev, "HotSpot", "9").contains("1024"));
        let f8 = fig_speedup_by_iters(&ev, "CFD", "233K", "8");
        assert!(f8.contains("limit:"));
    }
}
