//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation (§V) from the simulated testbed.
//!
//! Each `fig*`/`table*` function returns the data series the corresponding
//! figure plots (so tests and Criterion benches can consume them), and
//! [`render`] formats them as text tables. The `repro` binary dispatches
//! by experiment id:
//!
//! ```text
//! cargo run -p gpp-bench --release --bin repro -- table1
//! cargo run -p gpp-bench --release --bin repro -- all
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod eval;
pub mod pcie_exp;
pub mod render;

pub use eval::{evaluate_all, CaseResult, Evaluation, EVAL_SEED};
