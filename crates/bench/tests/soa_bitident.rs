//! The SoA batch projector against the committed artifact corpus: every
//! skeleton in `skeletons/` × every machine datasheet in
//! `fixtures/machines/` (plus the built-ins), at several thread counts,
//! must project bit-identically to the serial exhaustive search.
//!
//! `determinism.rs` proves the same property over the synthetic paper
//! workloads; this suite proves it over the artifacts users actually
//! feed the tools — skeleton files parsed from text and machines loaded
//! from `.gmach` datasheets (including the replay-bus one with its
//! sidecar trace). Adding a skeleton or a datasheet to the repository
//! automatically widens the corpus.
//!
//! `Debug` for `f64` prints the shortest string that round-trips, so two
//! projections render identically iff every float in them has the same
//! bits.

use gpp_datausage::Hints;
use gpp_gpu_model::SearchOpts;
use gpp_skeleton::text;
use grophecy::projector::Grophecy;
use grophecy::MachineRegistry;
use std::path::{Path, PathBuf};

const SEED: u64 = 2013;

fn repo_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

fn committed_skeletons() -> Vec<PathBuf> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(repo_root().join("skeletons"))
        .expect("skeletons/ directory")
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "gsk"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "no committed skeletons found");
    paths
}

#[test]
fn soa_projection_is_bit_identical_over_the_committed_corpus() {
    let mut registry = MachineRegistry::builtin();
    registry
        .load_dir(&repo_root().join("fixtures/machines"))
        .expect("fixtures/machines datasheets load");
    assert!(registry.len() >= 4, "expected builtins plus datasheets");

    let skeletons: Vec<(PathBuf, gpp_skeleton::Program)> = committed_skeletons()
        .into_iter()
        .map(|path| {
            let src = std::fs::read_to_string(&path).expect("read skeleton");
            let program = text::parse(&src).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            (path, program)
        })
        .collect();

    for name in registry.names() {
        let machine = registry.config(&name, SEED).unwrap();
        let mut node = machine.node();
        let gro = Grophecy::calibrate(&machine, &mut node);
        for (path, program) in &skeletons {
            let hints = Hints::for_program(program);

            // The reference: the exact serial seed code path.
            gpp_par::set_threads(1);
            let reference = format!(
                "{:?}",
                gro.project_with(program, &hints, SearchOpts::exhaustive())
            );

            for threads in [1, 2, 8] {
                gpp_par::set_threads(threads);
                let got = format!(
                    "{:?}",
                    gro.project_with(program, &hints, SearchOpts::default())
                );
                assert_eq!(
                    got,
                    reference,
                    "{} on `{name}`: SoA projection at {threads} threads \
                     diverged from serial exhaustive",
                    path.file_name().unwrap().to_string_lossy(),
                );
            }
            gpp_par::set_threads(0);
        }
    }
}
