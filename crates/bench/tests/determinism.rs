//! The parallel projection engine's central guarantee: the projection a
//! user sees is bit-identical to the serial exhaustive search — at any
//! thread count, with and without pruning and the synthesis memo.
//!
//! `Debug` for `f64` prints the shortest string that round-trips, so two
//! projections render identically iff every float in them has the same
//! bits.

use gpp_gpu_model::{project_all, project_best_with, SearchOpts};
use gpp_workloads::paper_cases;
use grophecy::machine::MachineConfig;
use grophecy::projector::Grophecy;

const SEED: u64 = 2013;

#[test]
fn projections_are_bit_identical_across_thread_counts_and_options() {
    let machine = MachineConfig::anl_eureka_node(SEED);
    let mut node = machine.node();
    let gro = Grophecy::calibrate(&machine, &mut node);

    for case in paper_cases() {
        // The reference: the exact serial seed code path.
        gpp_par::set_threads(1);
        let reference = format!(
            "{:?}",
            gro.project_with(&case.program, &case.hints, SearchOpts::exhaustive())
        );
        for threads in [1, 2, 8] {
            gpp_par::set_threads(threads);
            for (label, opts) in [
                ("exhaustive", SearchOpts::exhaustive()),
                ("prune+memo", SearchOpts::default()),
            ] {
                let got = format!("{:?}", gro.project_with(&case.program, &case.hints, opts));
                assert_eq!(
                    got, reference,
                    "{} {}: {} projection at {} threads diverged from serial",
                    case.app, case.dataset, label, threads
                );
            }
        }
        gpp_par::set_threads(0);
    }
}

#[test]
fn pruning_never_changes_the_selected_best_config() {
    let spec = MachineConfig::anl_eureka_node(SEED).gpu_spec;
    for case in paper_cases() {
        for kernel in &case.program.kernels {
            for axis in kernel.axis_candidates() {
                let chars = kernel.characteristics_with_axis(&case.program, axis);
                let (exhaustive_best, _) = project_all(&kernel.name, &chars, &spec);
                for opts in [
                    SearchOpts::default(),
                    SearchOpts {
                        prune: true,
                        memo: false,
                    },
                    SearchOpts {
                        prune: false,
                        memo: true,
                    },
                ] {
                    let pruned = project_best_with(&kernel.name, &chars, &spec, opts);
                    assert_eq!(
                        format!("{:?}", pruned),
                        format!("{:?}", exhaustive_best),
                        "{} {} kernel {}: {:?} changed the selected best",
                        case.app,
                        case.dataset,
                        kernel.name,
                        opts
                    );
                }
            }
        }
    }
}
