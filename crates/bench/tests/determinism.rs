//! The parallel projection engine's central guarantee: the projection a
//! user sees is bit-identical to the serial exhaustive search — at any
//! thread count, with and without pruning and the synthesis memo.
//!
//! `Debug` for `f64` prints the shortest string that round-trips, so two
//! projections render identically iff every float in them has the same
//! bits.

use gpp_gpu_model::{project_all, project_best_with, SearchOpts};
use gpp_workloads::paper_cases;
use grophecy::machine::MachineConfig;
use grophecy::projector::Grophecy;

const SEED: u64 = 2013;

#[test]
fn projections_are_bit_identical_across_thread_counts_and_options() {
    let machine = MachineConfig::anl_eureka_node(SEED);
    let mut node = machine.node();
    let gro = Grophecy::calibrate(&machine, &mut node);

    for case in paper_cases() {
        // The reference: the exact serial seed code path.
        gpp_par::set_threads(1);
        let reference = format!(
            "{:?}",
            gro.project_with(&case.program, &case.hints, SearchOpts::exhaustive())
        );
        for threads in [1, 2, 8] {
            gpp_par::set_threads(threads);
            for (label, opts) in [
                ("exhaustive", SearchOpts::exhaustive()),
                ("scalar prune+memo", SearchOpts::scalar()),
                ("soa prune+memo", SearchOpts::default()),
            ] {
                let got = format!("{:?}", gro.project_with(&case.program, &case.hints, opts));
                assert_eq!(
                    got, reference,
                    "{} {}: {} projection at {} threads diverged from serial",
                    case.app, case.dataset, label, threads
                );
            }
        }
        gpp_par::set_threads(0);
    }
}

/// The fault-injection hooks must be invisible when no plan is armed: an
/// empty plan routed through the fault-aware calibration path must yield
/// a projector and projections bit-identical to the plain path — same RNG
/// draws, same floats, same everything.
#[test]
fn empty_fault_plan_is_bit_identical_to_plain_path() {
    use gpp_fault::{FaultInjector, FaultPlan};
    use std::sync::Arc;

    let machine = MachineConfig::anl_eureka_node(SEED);

    let mut plain_node = machine.node();
    let plain = Grophecy::calibrate(&machine, &mut plain_node);

    let mut faulty_node = machine.node();
    let injector = Arc::new(FaultInjector::new(FaultPlan::empty()));
    let faulty = Grophecy::try_calibrate(&machine, &mut faulty_node, injector.clone())
        .expect("empty plan cannot fail calibration");

    assert_eq!(injector.total_fired(), 0);
    assert_eq!(
        plain.pcie_model().h2d.alpha.to_bits(),
        faulty.pcie_model().h2d.alpha.to_bits()
    );
    assert_eq!(
        plain.pcie_model().h2d.beta.to_bits(),
        faulty.pcie_model().h2d.beta.to_bits()
    );
    assert_eq!(
        plain.pcie_model().d2h.alpha.to_bits(),
        faulty.pcie_model().d2h.alpha.to_bits()
    );
    assert_eq!(
        plain.pcie_model().d2h.beta.to_bits(),
        faulty.pcie_model().d2h.beta.to_bits()
    );

    for case in paper_cases() {
        let want = format!("{:?}", plain.project(&case.program, &case.hints));
        let got = format!("{:?}", faulty.project(&case.program, &case.hints));
        assert_eq!(
            got, want,
            "{} {}: projection through the empty-plan path diverged",
            case.app, case.dataset
        );
    }
}

#[test]
fn pruning_never_changes_the_selected_best_config() {
    let spec = MachineConfig::anl_eureka_node(SEED).gpu_spec;
    for case in paper_cases() {
        for kernel in &case.program.kernels {
            for axis in kernel.axis_candidates() {
                let chars = kernel.characteristics_with_axis(&case.program, axis);
                let (exhaustive_best, _) = project_all(&kernel.name, &chars, &spec);
                for opts in [
                    SearchOpts::default(),
                    SearchOpts::scalar(),
                    SearchOpts {
                        prune: true,
                        memo: false,
                        soa: false,
                    },
                    SearchOpts {
                        prune: false,
                        memo: true,
                        soa: false,
                    },
                    SearchOpts {
                        prune: true,
                        memo: false,
                        soa: true,
                    },
                    SearchOpts {
                        prune: false,
                        memo: false,
                        soa: true,
                    },
                ] {
                    let pruned = project_best_with(&kernel.name, &chars, &spec, opts);
                    assert_eq!(
                        format!("{:?}", pruned),
                        format!("{:?}", exhaustive_best),
                        "{} {} kernel {}: {:?} changed the selected best",
                        case.app,
                        case.dataset,
                        kernel.name,
                        opts
                    );
                }
            }
        }
    }
}
