//! Tables I & II, Figures 5, 6, 7, 9, 11: per-application projection and
//! measurement.
//!
//! One benchmark per application covering the projection path (what a
//! GROPHECY++ user pays per what-if query) and one for the full
//! ten-case evaluation that regenerates both tables.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpp_bench::eval::evaluate_all;
use gpp_workloads::{cfd::Cfd, hotspot::HotSpot, paper_cases, srad::Srad, stassuij::Stassuij};
use grophecy::machine::MachineConfig;
use grophecy::measurement::measure;
use grophecy::projector::Grophecy;
use std::hint::black_box;

fn bench_project_per_app(c: &mut Criterion) {
    let machine = MachineConfig::anl_eureka_node(7);
    let mut node = machine.node();
    let gro = Grophecy::calibrate(&machine, &mut node);

    let mut group = c.benchmark_group("fig7_9_11_project");
    group.sample_size(20);
    let cases = [
        ("CFD_97K", Cfd { nel: 97_000 }.case()),
        ("HotSpot_1024", HotSpot { n: 1024 }.case()),
        ("SRAD_2048", Srad { n: 2048 }.case()),
        ("Stassuij", Stassuij::paper().case()),
    ];
    for (name, case) in &cases {
        group.bench_with_input(BenchmarkId::new("project", name), case, |b, case| {
            b.iter(|| black_box(gro.project(&case.program, &case.hints)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("table1_measure");
    group.sample_size(10);
    for (name, case) in &cases {
        let proj = gro.project(&case.program, &case.hints);
        group.bench_with_input(BenchmarkId::new("measure", name), case, |b, case| {
            b.iter(|| black_box(measure(&mut node, &case.program, &proj)))
        });
    }
    group.finish();
}

fn bench_full_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_full_evaluation");
    group.sample_size(10);
    group.bench_function("all_ten_cases", |b| {
        b.iter(|| black_box(evaluate_all(black_box(7))))
    });
    group.finish();
}

fn bench_fig5_fig6_reports(c: &mut Criterion) {
    let ev = evaluate_all(7);
    let mut group = c.benchmark_group("fig5_fig6_reports");
    group.bench_function("speedup_reports_all_cases", |b| {
        b.iter(|| {
            let total: f64 = ev
                .cases
                .iter()
                .map(|case| case.speedup_report().error_combined())
                .sum();
            black_box(total)
        })
    });
    group.finish();
}

fn bench_skeleton_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("skeleton_construction");
    group.bench_function("all_paper_skeletons", |b| {
        b.iter(|| black_box(paper_cases().len()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_project_per_app,
    bench_full_evaluation,
    bench_fig5_fig6_reports,
    bench_skeleton_build
);
criterion_main!(benches);
