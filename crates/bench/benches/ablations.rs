//! Ablation benches for DESIGN.md's design decisions D1–D5.

use criterion::{criterion_group, criterion_main, Criterion};
use gpp_bench::ablation;
use std::hint::black_box;

fn bench_ablation_pcie_model(c: &mut Criterion) {
    // D1: the 2-point linear calibration vs the 30-point piecewise one —
    // the *calibration cost* difference is the paper's argument.
    let mut group = c.benchmark_group("ablation_pcie_model");
    group.sample_size(10);
    group.bench_function("d1_linear_vs_piecewise", |b| {
        b.iter(|| black_box(ablation::pcie_model_ablation(black_box(5))))
    });
    group.finish();
}

fn bench_ablation_memtype(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_memtype");
    group.sample_size(10);
    group.bench_function("d2_pinned_model_on_pageable_reality", |b| {
        b.iter(|| black_box(ablation::memtype_ablation(black_box(5))))
    });
    group.finish();
}

fn bench_ablation_batching(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_batching");
    group.sample_size(10);
    group.bench_function("d3_separate_vs_batched_plans", |b| {
        b.iter(|| black_box(ablation::batching_ablation(black_box(5))))
    });
    group.finish();
}

fn bench_ablation_hints(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_hints");
    group.sample_size(10);
    group.bench_function("d5_srad_temporary_hint", |b| {
        b.iter(|| black_box(ablation::hints_ablation(black_box(5))))
    });
    group.finish();
}

fn bench_sweep_errors(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_sweep_errors");
    group.sample_size(10);
    group.bench_function("v_a_headline_sweep", |b| {
        b.iter(|| black_box(ablation::sweep_errors(black_box(5))))
    });
    group.finish();
}

fn bench_fusion_explorer(c: &mut Criterion) {
    use grophecy::fusion::explore_fusion;
    use grophecy::machine::MachineConfig;
    use grophecy::projector::Grophecy;
    let machine = MachineConfig::anl_eureka_node(5);
    let mut node = machine.node();
    let gro = Grophecy::calibrate(&machine, &mut node);
    let hs = gpp_workloads::hotspot::HotSpot { n: 128 };
    let proj = gro.project(&hs.program(), &hs.hints());
    let mut group = c.benchmark_group("ablation_fusion");
    group.bench_function("d6_fusion_factor_search", |b| {
        b.iter(|| black_box(explore_fusion(&gro, &proj.kernels[0], 1, 16)))
    });
    group.finish();
}

fn bench_memtype_tradeoff(c: &mut Criterion) {
    use gpp_pcie::{BusParams, BusSimulator};
    use grophecy::memtype::DualCalibration;
    let mut group = c.benchmark_group("ablation_memtype_tradeoff");
    group.sample_size(10);
    group.bench_function("vii_dual_calibration_and_explore", |b| {
        b.iter(|| {
            let mut bus = BusSimulator::new(BusParams::pcie_v1_x16(), black_box(5));
            let cal = DualCalibration::run(&mut bus);
            let hs = gpp_workloads::hotspot::HotSpot { n: 512 };
            let plan = gpp_datausage::analyze(&hs.program(), &hs.hints());
            black_box(cal.explore(&plan))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_ablation_pcie_model,
    bench_ablation_memtype,
    bench_ablation_batching,
    bench_ablation_hints,
    bench_sweep_errors,
    bench_fusion_explorer,
    bench_memtype_tradeoff
);
criterion_main!(benches);
