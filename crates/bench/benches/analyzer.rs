//! The data-usage analyzer and BRS machinery under load: the static-
//! analysis cost a GROPHECY++ query pays per kernel sequence.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpp_brs::{Section, SectionSet};
use gpp_datausage::analyze;
use gpp_skeleton::sections::{read_sets, write_sets};
use gpp_workloads::{cfd::Cfd, hotspot::HotSpot, srad::Srad, stassuij::Stassuij};
use std::hint::black_box;

fn bench_analyze(c: &mut Criterion) {
    let mut group = c.benchmark_group("datausage_analyze");
    let cases = [
        ("CFD_233K", Cfd { nel: 232_000 }.case()),
        ("HotSpot_1024", HotSpot { n: 1024 }.case()),
        ("SRAD_4096", Srad { n: 4096 }.case()),
        ("Stassuij", Stassuij::paper().case()),
    ];
    for (name, case) in &cases {
        group.bench_with_input(BenchmarkId::new("plan", name), case, |b, case| {
            b.iter(|| black_box(analyze(&case.program, &case.hints)))
        });
    }
    group.finish();
}

fn bench_section_extraction(c: &mut Criterion) {
    let case = Srad { n: 4096 }.case();
    c.bench_function("brs_read_write_sets_srad", |b| {
        b.iter(|| {
            for k in &case.program.kernels {
                black_box(read_sets(k, &case.program));
                black_box(write_sets(k, &case.program));
            }
        })
    });
}

fn bench_section_algebra(c: &mut Criterion) {
    // The union/subtract workload the analyzer generates: many
    // overlapping 2-D boxes.
    c.bench_function("brs_union_100_boxes", |b| {
        b.iter(|| {
            let mut set = SectionSet::empty(2);
            for k in 0..100i64 {
                set.insert(Section::dense(&[(k, k + 40), (k % 7, k % 7 + 40)]));
            }
            black_box(set.element_count())
        })
    });
    c.bench_function("brs_subtract_checkerboard", |b| {
        b.iter(|| {
            let mut set = SectionSet::from_section(Section::dense(&[(0, 255), (0, 255)]));
            for k in 0..16i64 {
                set.subtract_section(&Section::dense(&[(k * 16, k * 16 + 7), (0, 255)]));
            }
            black_box(set.element_count())
        })
    });
}

criterion_group!(
    benches,
    bench_analyze,
    bench_section_extraction,
    bench_section_algebra
);
criterion_main!(benches);
