//! Figures 8, 10, 12: speedup-vs-iteration-count sweeps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpp_bench::eval::{evaluate_all, EVAL_SEED};
use grophecy::speedup::SpeedupSeries;
use std::hint::black_box;

fn bench_sweeps(c: &mut Criterion) {
    let ev = evaluate_all(EVAL_SEED);
    let mut group = c.benchmark_group("fig8_10_12_iteration_sweeps");
    for (fig, app, dataset) in [
        ("fig8_CFD", "CFD", "233K"),
        ("fig10_HotSpot", "HotSpot", "1024"),
        ("fig12_SRAD", "SRAD", "4096"),
    ] {
        let case = ev.case(app, dataset);
        group.bench_with_input(
            BenchmarkId::new("sweep_256_points", fig),
            &case,
            |b, case| {
                b.iter(|| {
                    let s = case.sweep(1..=256);
                    black_box(s.points.len())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("limit_and_window", fig),
            &case,
            |b, case| {
                b.iter(|| {
                    let s = case.sweep([1, 2, 4, 8, 16, 32, 64, 128, 256]);
                    let lim = SpeedupSeries::limit(&case.projection, &case.measurement);
                    black_box((s.twice_as_accurate_until(), lim.measured))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sweeps);
criterion_main!(benches);
