//! Figure 4: calibration and validation of the linear transfer model.
//!
//! Benchmarks the two-point calibration itself (the thing GROPHECY++
//! runs automatically on a new system), a single model evaluation (the
//! thing projections do constantly), and the full Figure 4 validation.

use criterion::{criterion_group, criterion_main, Criterion};
use gpp_bench::pcie_exp::{fig4_data, repeatability};
use gpp_pcie::{BusParams, BusSimulator, Calibrator};
use std::hint::black_box;

fn bench_calibration(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_calibration");
    group.sample_size(20);
    group.bench_function("two_point_both_directions", |b| {
        b.iter(|| {
            let mut bus = BusSimulator::new(BusParams::pcie_v1_x16(), black_box(3));
            black_box(Calibrator::default().calibrate(&mut bus))
        })
    });
    group.finish();
}

fn bench_model_predict(c: &mut Criterion) {
    let mut bus = BusSimulator::new(BusParams::pcie_v1_x16(), 3);
    let model = Calibrator::default().calibrate(&mut bus);
    c.bench_function("fig4_model_predict", |b| {
        b.iter(|| black_box(model.h2d.predict(black_box(8 << 20))))
    });
}

fn bench_validation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_validation");
    group.sample_size(10);
    group.bench_function("full_sweep_both_directions", |b| {
        b.iter(|| black_box(fig4_data(black_box(3))))
    });
    group.bench_function("repeatability_experiment", |b| {
        b.iter(|| black_box(repeatability(black_box(3))))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_calibration,
    bench_model_predict,
    bench_validation
);
criterion_main!(benches);
