//! Figures 2 & 3: the transfer-time sweep (pinned/pageable × H2D/D2H)
//! and the pinned-over-pageable speedup derived from it.
//!
//! Benchmarks both the individual simulated transfers at representative
//! sizes and the full 30-point × 4-curve sweep that regenerates Figure 2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpp_bench::pcie_exp::fig2_data;
use gpp_pcie::{Bus, BusParams, BusSimulator, Direction, MemType};
use std::hint::black_box;

fn bench_single_transfers(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_single_transfer");
    group.sample_size(20);
    for pow in [0u32, 10, 20, 29] {
        let bytes = 1u64 << pow;
        for mem in MemType::ALL {
            let mut bus = BusSimulator::new(BusParams::pcie_v1_x16(), 1);
            group.bench_with_input(
                BenchmarkId::new(format!("{mem}"), bytes),
                &bytes,
                |b, &bytes| {
                    b.iter(|| {
                        black_box(bus.transfer(black_box(bytes), Direction::HostToDevice, mem))
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_full_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_full_sweep");
    group.sample_size(10);
    group.bench_function("30_sizes_x_4_curves_x_10_runs", |b| {
        b.iter(|| black_box(fig2_data(black_box(7))))
    });
    group.finish();
}

fn bench_fig3_speedups(c: &mut Criterion) {
    // Figure 3 is a pure post-processing of Figure 2's data.
    let data = fig2_data(7);
    let mut group = c.benchmark_group("fig3_speedup_derivation");
    group.bench_function("derive_pinned_over_pageable", |b| {
        b.iter(|| {
            let s: f64 = data
                .rows
                .iter()
                .map(|r| r.pageable_h2d / r.pinned_h2d + r.pageable_d2h / r.pinned_d2h)
                .sum();
            black_box(s)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_single_transfers,
    bench_full_fig2,
    bench_fig3_speedups
);
criterion_main!(benches);
