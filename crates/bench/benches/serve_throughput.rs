//! Throughput of the `gpp-serve` projection service: what the caches buy.
//!
//! Three tiers, slowest to fastest:
//!   * `cold`   — fresh service per request: pays calibration + projection
//!     (the one-shot CLI cost a server is meant to amortize);
//!   * `warm`   — calibration cached, projection recomputed (a stream of
//!     distinct what-if queries against one machine);
//!   * `cached` — both caches hit (a repeated query): the steady state.
//!
//! Plus one end-to-end TCP tier (`wire_cached`) that includes framing and
//! loopback networking on top of the cached handler path.

use criterion::{criterion_group, criterion_main, Criterion};
use gpp_serve::{Client, Command, Request, ServeConfig, Server, ServiceState};
use std::hint::black_box;
use std::time::Duration;

fn project_payload(seed: u64) -> String {
    let mut req = Request::new(Command::Project);
    req.seed = seed;
    req.skeleton = include_str!("../../../skeletons/vector_add.gsk").to_string();
    req.encode()
}

fn bench_handler_tiers(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(10);

    group.bench_function("cold_fresh_service", |b| {
        let payload = project_payload(2013);
        b.iter(|| {
            let state = ServiceState::new(ServeConfig::default());
            black_box(state.handle(&payload, 0))
        })
    });

    group.bench_function("warm_calibration_cached", |b| {
        let state = ServiceState::new(ServeConfig::default());
        state.handle(&project_payload(2013), 0);
        // Distinct sparse hints defeat the projection memo while reusing
        // the (machine, seed) calibration.
        let payloads: Vec<String> = (0..64u64)
            .map(|i| {
                let mut req = Request::new(Command::Project);
                req.skeleton = include_str!("../../../skeletons/vector_add.gsk").to_string();
                req.sparse = vec![("a".to_string(), 1 << 20 | i)];
                req.encode()
            })
            .collect();
        let mut next = 0usize;
        b.iter(|| {
            let payload = &payloads[next % payloads.len()];
            next += 1;
            black_box(state.handle(payload, 0))
        })
    });

    group.bench_function("cached_repeat_query", |b| {
        let state = ServiceState::new(ServeConfig::default());
        let payload = project_payload(2013);
        state.handle(&payload, 0);
        b.iter(|| black_box(state.handle(&payload, 0)))
    });

    group.finish();
}

fn bench_wire_round_trip(c: &mut Criterion) {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let handle = server.spawn().expect("spawn server");
    let mut client = Client::connect(handle.addr(), Duration::from_secs(30)).expect("connect");
    let mut req = Request::new(Command::Project);
    req.skeleton = include_str!("../../../skeletons/vector_add.gsk").to_string();
    client.call(&req).expect("prime the caches");

    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(20);
    group.bench_function("wire_cached", |b| {
        b.iter(|| black_box(client.call(&req).expect("round trip")))
    });
    group.finish();

    drop(client);
    handle.shutdown_and_join().expect("clean shutdown");
}

criterion_group!(benches, bench_handler_tiers, bench_wire_round_trip);
criterion_main!(benches);
