//! Throughput of the `gpp-serve` projection service: what the caches and
//! the SoA batch path buy, measured at the service layer.
//!
//! Three tiers, slowest to fastest:
//!   * `cold`      — a fresh service per request: pays calibration +
//!     projection (the one-shot CLI cost a server is meant to amortize);
//!   * `hot`       — primed service, repeated query: both caches hit,
//!     the steady state of a serve deployment;
//!   * `hot_batch` — primed service, `batch` frames of many sub-requests
//!     each: the wire path that fans out through `gpp_par` into the SoA
//!     projector. Its `req_per_s` counts sub-requests; its latency
//!     percentiles are per *frame*.
//!
//! Methodology (see README § Performance): every tier runs `ROUNDS`
//! rounds and reports the **best round** — min-of-N defeats warmup and
//! scheduler noise, matching the regression gate's comparison rule.
//! p50/p99 come from the best round's per-call latencies.
//!
//! Writes `BENCH_serve.json` at the repository root (override with
//! `GPP_BENCH_OUT`). `ci.sh` re-runs this harness to a temporary file
//! and gates on >25% regression against the committed JSON (see
//! `perfgate`).
//!
//! Not a criterion harness: the JSON schema, the round structure, and
//! the batch-frame accounting are all bespoke, and the regression gate
//! needs a stable, self-describing output file.

use gpp_serve::{Command, Request, ServeConfig, ServiceState};
use grophecy::report::Json;
use std::hint::black_box;
use std::time::Instant;

const ROUNDS: usize = 5;
const COLD_CALLS: usize = 16;
const HOT_CALLS: usize = 256;
const BATCH_FRAMES: usize = 8;
const BATCH_WIDTH: usize = 32;

fn project_payload(seed: u64) -> String {
    let mut req = Request::new(Command::Project);
    req.seed = seed;
    req.skeleton = include_str!("../../../skeletons/vector_add.gsk").to_string();
    req.encode()
}

struct Tier {
    name: &'static str,
    calls_per_round: usize,
    requests_per_call: usize,
    best_round_s: f64,
    p50_us: f64,
    p99_us: f64,
}

impl Tier {
    fn req_per_s(&self) -> f64 {
        (self.calls_per_round * self.requests_per_call) as f64 / self.best_round_s
    }
}

/// Runs `calls_per_round` invocations of `call` for `ROUNDS` rounds and
/// keeps the fastest round's total plus its latency distribution.
fn measure(
    name: &'static str,
    calls_per_round: usize,
    requests_per_call: usize,
    mut call: impl FnMut(usize),
) -> Tier {
    let mut best_round_s = f64::INFINITY;
    let mut best_lat: Vec<f64> = Vec::new();
    for _ in 0..ROUNDS {
        let mut lat = Vec::with_capacity(calls_per_round);
        for i in 0..calls_per_round {
            let t0 = Instant::now();
            call(i);
            lat.push(t0.elapsed().as_secs_f64());
        }
        let total: f64 = lat.iter().sum();
        if total < best_round_s {
            best_round_s = total;
            best_lat = lat;
        }
    }
    best_lat.sort_by(f64::total_cmp);
    let pct = |q: f64| -> f64 {
        let idx = ((best_lat.len() - 1) as f64 * q).round() as usize;
        best_lat[idx] * 1e6
    };
    let tier = Tier {
        name,
        calls_per_round,
        requests_per_call,
        best_round_s,
        p50_us: pct(0.50),
        p99_us: pct(0.99),
    };
    eprintln!(
        "{:<10} {:>10.0} req/s  p50 {:>9.1} us  p99 {:>9.1} us",
        tier.name,
        tier.req_per_s(),
        tier.p50_us,
        tier.p99_us
    );
    tier
}

fn main() {
    let mut tiers = Vec::new();

    // Cold: every request builds a fresh service, so nothing is cached.
    let payload = project_payload(2013);
    tiers.push(measure("cold", COLD_CALLS, 1, |_| {
        let state = ServiceState::new(ServeConfig::default());
        black_box(state.handle(&payload, 0));
    }));

    // Hot: one primed service, the same query over and over.
    let state = ServiceState::new(ServeConfig::default());
    state.handle(&payload, 0);
    tiers.push(measure("hot", HOT_CALLS, 1, |_| {
        black_box(state.handle(&payload, 0));
    }));

    // Hot batch: frames of BATCH_WIDTH distinct-seed sub-requests (cache
    // misses on first round, hits after — min-of-N keeps the hit rounds)
    // through the parallel fan-out and the SoA projector.
    let frames: Vec<String> = (0..BATCH_FRAMES)
        .map(|f| {
            Request::new_batch(
                (0..BATCH_WIDTH).map(|i| project_payload(9000 + (f * BATCH_WIDTH + i) as u64)),
            )
            .encode()
        })
        .collect();
    tiers.push(measure("hot_batch", BATCH_FRAMES, BATCH_WIDTH, |i| {
        black_box(state.handle(&frames[i], 0));
    }));

    let json = Json::obj([
        ("bench", Json::Str("serve_throughput".to_string())),
        ("rounds", Json::Num(ROUNDS as f64)),
        ("threads", Json::Num(gpp_par::configured_threads() as f64)),
        (
            "tiers",
            Json::Arr(
                tiers
                    .iter()
                    .map(|t| {
                        Json::obj([
                            ("name", Json::Str(t.name.to_string())),
                            ("calls_per_round", Json::Num(t.calls_per_round as f64)),
                            ("requests_per_call", Json::Num(t.requests_per_call as f64)),
                            ("best_round_s", Json::Num(t.best_round_s)),
                            ("req_per_s", Json::Num(t.req_per_s())),
                            ("p50_us", Json::Num(t.p50_us)),
                            ("p99_us", Json::Num(t.p99_us)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let out = json.render();
    println!("{out}");
    let path = std::env::var("GPP_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json").to_string()
    });
    std::fs::write(&path, format!("{out}\n")).expect("write BENCH_serve.json");
    eprintln!("wrote {path}");
}
