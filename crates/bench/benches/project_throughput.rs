//! Throughput of the transformation-space search itself: serial
//! exhaustive vs pool-parallel exhaustive vs parallel + prune + memo vs
//! the arena-backed SoA batch projector, on the largest paper workload
//! (CFD at 232K elements — three kernels, the widest candidate space in
//! the suite).
//!
//! The timed region is exactly the kernel × axis × transformation search
//! (`project_best_with` over every task the app projector would spawn);
//! characteristics extraction and the transfer-plan analysis are hoisted
//! because no search option touches them. All search arms produce
//! bit-identical projections (the determinism suite asserts this); only
//! wall-clock differs.
//!
//! A fifth arm, `overlap`, times the full application projection of a
//! stream-annotated chunked schedule — the timeline construction the
//! overlap semantics added on top of the (memoized) kernel search.
//! Gating it keeps the per-transfer timeline bookkeeping from creeping
//! into the projection hot path.
//!
//! Writes `BENCH_project.json` at the repository root (override the
//! destination with `GPP_BENCH_OUT`) with per-arm timings and the
//! speedups over the serial baseline. `ci.sh` re-runs this harness to a
//! temporary file and gates on >25% regression against the committed
//! JSON (see `perfgate`).
//!
//! Not a criterion harness: the serial arm must pin `GPP_THREADS=1` via
//! `gpp_par::set_threads`, which is process-global state a shared
//! criterion runner would race on.

use gpp_skeleton::KernelCharacteristics;
use gpp_workloads::cfd::Cfd;
use grophecy::report::Json;
use std::hint::black_box;
use std::time::Instant;

const ITERS: u32 = 20;

struct Arm {
    name: &'static str,
    threads: usize,
    opts: gpp_gpu_model::SearchOpts,
}

fn main() {
    let spec = gpp_gpu_model::GpuSpec::quadro_fx_5600();
    let case = Cfd {
        nel: *Cfd::PAPER_SIZES.last().unwrap(),
    }
    .case();

    // The same task list `Grophecy::project_with` flattens: one search
    // per (kernel, thread-axis candidate).
    let tasks: Vec<(String, KernelCharacteristics)> = case
        .program
        .kernels
        .iter()
        .flat_map(|k| {
            k.axis_candidates().into_iter().map(|axis| {
                (
                    k.name.clone(),
                    k.characteristics_with_axis(&case.program, axis),
                )
            })
        })
        .collect();
    let candidates: usize = tasks
        .iter()
        .map(|(_, c)| gpp_gpu_model::candidate_space(c, &spec).len())
        .sum();

    let arms = [
        Arm {
            name: "serial_exhaustive",
            threads: 1,
            opts: gpp_gpu_model::SearchOpts::exhaustive(),
        },
        Arm {
            name: "parallel_exhaustive",
            threads: 0, // 0 = unset: GPP_THREADS or available parallelism
            opts: gpp_gpu_model::SearchOpts::exhaustive(),
        },
        Arm {
            name: "parallel_prune",
            threads: 0,
            opts: gpp_gpu_model::SearchOpts::scalar(),
        },
        Arm {
            name: "soa_prune",
            threads: 0,
            opts: gpp_gpu_model::SearchOpts::default(),
        },
    ];

    let run = |opts: gpp_gpu_model::SearchOpts| {
        for (name, chars) in &tasks {
            black_box(gpp_gpu_model::project_best_with(name, chars, &spec, opts));
        }
    };

    let mut results: Vec<(&'static str, f64, f64)> = Vec::new();
    for arm in &arms {
        gpp_par::set_threads(arm.threads);
        // One untimed pass so every arm runs against warm caches — the
        // memo arm's steady state is the quantity of interest (a serve
        // deployment pays synthesis once per distinct kernel).
        run(arm.opts);
        let mut times = Vec::with_capacity(ITERS as usize);
        for _ in 0..ITERS {
            let t0 = Instant::now();
            run(arm.opts);
            times.push(t0.elapsed().as_secs_f64());
        }
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        eprintln!(
            "{:<22} min {:>9.3} ms  mean {:>9.3} ms",
            arm.name,
            min * 1e3,
            mean * 1e3
        );
        results.push((arm.name, min, mean));
    }
    gpp_par::set_threads(0);

    // The overlap arm: whole-app projection of a stream-annotated
    // chunked schedule. Unlike the search arms, the timed region is
    // `Grophecy::project` itself — calibration and parsing are hoisted,
    // the kernel search is warm, so the measurement isolates the
    // timeline/overlap bookkeeping the schedule pays per projection.
    const STREAMED: &str = "\
program overlap_bench
array a f32 [1048576]
array b f32 [1048576]
array c f32 [1048576]
array d f32 [1048576]
h2d a stream 1 chunks=8
h2d b stream 2 chunks=8
kernel k1
  parallel i 1048576
  stmt adds=1
    read  a [i]
    read  b [i]
    write c [i]
d2h c stream 1 chunks=8
kernel k2
  parallel i 1048576
  stmt adds=1
    read  c [i]
    write d [i]
d2h d stream 2 chunks=8
";
    const OVERLAP_REPS: u32 = 32;
    let program = gpp_skeleton::text::parse(STREAMED).expect("bench skeleton parses");
    let hints = gpp_datausage::Hints::for_program(&program);
    let machine = grophecy::MachineConfig::anl_eureka_node(2013);
    let mut node = machine.node();
    let gro = grophecy::projector::Grophecy::calibrate(&machine, &mut node);
    let run_overlap = || {
        for _ in 0..OVERLAP_REPS {
            black_box(gro.project(black_box(&program), &hints));
        }
    };
    run_overlap();
    let mut times = Vec::with_capacity(ITERS as usize);
    for _ in 0..ITERS {
        let t0 = Instant::now();
        run_overlap();
        times.push(t0.elapsed().as_secs_f64());
    }
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    eprintln!(
        "{:<22} min {:>9.3} ms  mean {:>9.3} ms",
        "overlap",
        min * 1e3,
        mean * 1e3
    );
    results.push(("overlap", min, mean));

    let serial_min = results[0].1;
    let (hits, misses) = gpp_gpu_model::synth_memo_stats();
    let json = Json::obj([
        ("bench", Json::Str("project_throughput".to_string())),
        ("workload", Json::Str(format!("CFD {}", case.dataset))),
        ("searches_per_iter", Json::Num(tasks.len() as f64)),
        ("candidates_per_iter", Json::Num(candidates as f64)),
        ("iters", Json::Num(f64::from(ITERS))),
        ("threads", Json::Num(gpp_par::configured_threads() as f64)),
        (
            "arms",
            Json::Arr(
                results
                    .iter()
                    .map(|(name, min, mean)| {
                        Json::obj([
                            ("name", Json::Str((*name).to_string())),
                            ("min_s", Json::Num(*min)),
                            ("mean_s", Json::Num(*mean)),
                            ("speedup_vs_serial", Json::Num(serial_min / min)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("memo_hits", Json::Num(hits as f64)),
        ("memo_misses", Json::Num(misses as f64)),
    ]);
    let out = json.render();
    println!("{out}");
    let path = std::env::var("GPP_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_project.json").to_string()
    });
    std::fs::write(&path, format!("{out}\n")).expect("write BENCH_project.json");
    eprintln!("wrote {path}");
}
