//! Property tests for the PCIe stack: monotonicity of the mechanism,
//! exactness of the linear fit on quiet buses, robustness of calibration.

use gpp_pcie::{Bus, BusParams, BusSimulator, Calibrator, Direction, LinearModel, MemType};
use proptest::prelude::*;

fn any_dir() -> impl Strategy<Value = Direction> {
    prop_oneof![Just(Direction::HostToDevice), Just(Direction::DeviceToHost)]
}

fn any_mem() -> impl Strategy<Value = MemType> {
    prop_oneof![Just(MemType::Pinned), Just(MemType::Pageable)]
}

proptest! {
    #[test]
    fn ideal_time_is_monotone_in_size(
        bytes in 1u64..(1 << 28),
        extra in 1u64..(1 << 20),
        dir in any_dir(),
        mem in any_mem(),
    ) {
        let bus = BusSimulator::new(BusParams::pcie_v1_x16().quiet(), 0);
        prop_assert!(bus.ideal_time(bytes + extra, dir, mem) >= bus.ideal_time(bytes, dir, mem));
    }

    #[test]
    fn ideal_time_is_positive_and_finite(
        bytes in 0u64..(1 << 30),
        dir in any_dir(),
        mem in any_mem(),
    ) {
        let bus = BusSimulator::new(BusParams::pcie_v1_x16().quiet(), 0);
        let t = bus.ideal_time(bytes, dir, mem);
        prop_assert!(t.is_finite() && t > 0.0);
    }

    #[test]
    fn noisy_time_stays_within_sane_envelope(
        bytes in 1u64..(1 << 28),
        dir in any_dir(),
        seed in 0u64..1000,
    ) {
        let mut bus = BusSimulator::new(BusParams::pcie_v1_x16(), seed);
        let ideal = bus.ideal_time(bytes, dir, MemType::Pinned);
        let t = bus.transfer(bytes, dir, MemType::Pinned);
        // Never below half the mechanism, never above ideal + hiccup cap
        // + generous relative margin.
        prop_assert!(t >= ideal * 0.5);
        prop_assert!(t <= ideal * 1.5 + 4e-3, "t={t}, ideal={ideal}");
    }

    #[test]
    fn linear_model_predict_is_affine(
        alpha in 0.0f64..1e-3,
        inv_bw in 1e-11f64..1e-8,
        a in 0u64..(1 << 28),
        b in 0u64..(1 << 28),
    ) {
        let m = LinearModel::new(alpha, inv_bw);
        let direct = m.predict(a + b);
        let sum = m.predict(a) + m.predict(b) - alpha; // affine, not linear
        prop_assert!((direct - sum).abs() < 1e-12 * direct.max(1.0));
    }

    #[test]
    fn calibration_on_quiet_bus_predicts_large_transfers_exactly(
        pow in 20u32..29,
        seed in 0u64..50,
    ) {
        let mut bus = BusSimulator::new(BusParams::pcie_v1_x16().quiet(), seed);
        let model = Calibrator::default().calibrate(&mut bus);
        let bytes = 1u64 << pow;
        let ideal = bus.ideal_time(bytes, Direction::HostToDevice, MemType::Pinned);
        let pred = model.h2d.predict(bytes);
        // On a noise-free mechanism the fit is near-perfect above the
        // latency-dominated regime.
        prop_assert!((pred / ideal - 1.0).abs() < 0.02, "pred {pred} vs ideal {ideal}");
    }

    #[test]
    fn calibration_is_stable_across_seeds(seed in 0u64..200) {
        // Whatever day you calibrate on, α and β land in tight bands:
        // the duration-scaled hiccup model cannot poison the 2-point fit.
        let mut bus = BusSimulator::new(BusParams::pcie_v1_x16(), seed);
        let m = Calibrator::default().calibrate(&mut bus);
        prop_assert!((8.0e-6..13.0e-6).contains(&m.h2d.alpha), "alpha {}", m.h2d.alpha);
        prop_assert!((2.2e9..2.8e9).contains(&m.h2d.bandwidth()), "bw {}", m.h2d.bandwidth());
        prop_assert!((9.0e-6..15.0e-6).contains(&m.d2h.alpha));
    }

    #[test]
    fn faster_generations_are_strictly_faster(
        bytes in (1u64 << 16)..(1 << 28),
        dir in any_dir(),
    ) {
        let v1 = BusSimulator::new(BusParams::pcie_v1_x16().quiet(), 0);
        let v2 = BusSimulator::new(BusParams::pcie_v2_x16().quiet(), 0);
        let v3 = BusSimulator::new(BusParams::pcie_v3_x16().quiet(), 0);
        let (t1, t2, t3) = (
            v1.ideal_time(bytes, dir, MemType::Pinned),
            v2.ideal_time(bytes, dir, MemType::Pinned),
            v3.ideal_time(bytes, dir, MemType::Pinned),
        );
        prop_assert!(t1 > t2 && t2 > t3);
    }

    #[test]
    fn breakeven_is_consistent(alpha in 1e-7f64..1e-4, inv_bw in 1e-11f64..1e-8) {
        let m = LinearModel::new(alpha, inv_bw);
        let d = m.breakeven_bytes();
        // At the break-even size, fixed and streaming components match.
        prop_assert!(((m.beta * d) / m.alpha - 1.0).abs() < 1e-9);
    }
}
