//! PCIe data-transfer modeling: the heart of GROPHECY++'s extension.
//!
//! The paper's first contribution (§III-C) is *"a simple but accurate model
//! for predicting PCIe transfer time that requires only two measurements to
//! derive parameters"*:
//!
//! ```text
//! T(d) = α + β·d        (Equation 1)
//! ```
//!
//! where `α` is the fixed per-transfer latency (~10 µs on the paper's
//! system) and `1/β` the asymptotic bandwidth (~2.5 GB/s on PCIe v1 x16
//! with pinned memory). `α` is measured as the time of a 1-byte transfer,
//! `β` from a single large (512 MB) transfer, each averaged over ten runs.
//!
//! This crate provides:
//!
//! * [`sim::BusSimulator`] — a mechanistic PCIe bus simulator standing in
//!   for the physical bus (we have no GPU): packetized DMA with per-TLP
//!   framing overhead, pinned vs pageable staging behaviour, direction
//!   asymmetry, and seeded measurement noise. This is the "real hardware"
//!   that the empirical model is calibrated against and validated on.
//! * [`model::LinearModel`] — Equation 1.
//! * [`calibrate::Calibrator`] — the two-point synthetic benchmark
//!   (automatically run "on each new system", i.e. for each bus instance).
//! * [`piecewise::PiecewiseModel`] — a log-size interpolation alternative
//!   used by the ablation study to show two points are enough (DESIGN.md
//!   D1).
//! * [`alloc::AllocModel`] — memory-allocation overhead, the paper's
//!   stated future work (§VII), included as an optional projection term.
//!
//! # Example
//!
//! ```
//! use gpp_pcie::{BusSimulator, BusParams, Calibrator};
//!
//! let mut bus = BusSimulator::new(BusParams::pcie_v1_x16(), 42);
//! let model = Calibrator::default().calibrate(&mut bus);
//! let t = model.h2d.predict(8 << 20); // 8 MB host-to-device, seconds
//! assert!(t > 0.0025 && t < 0.0045); // ~3.2 ms at ~2.5 GB/s
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod backend;
pub mod calibrate;
pub mod error;
pub mod faulty;
pub mod model;
pub mod overlap;
pub mod params;
pub mod piecewise;
pub mod replay;
pub mod sim;

pub use alloc::AllocModel;
pub use backend::BusBackend;
pub use calibrate::{CalibratedBus, CalibrationError, Calibrator, ProbeBatch, StreamingFit};
pub use error::{error_magnitude, mean_error_magnitude, SweepValidation};
pub use faulty::FaultyBus;
pub use model::LinearModel;
pub use overlap::{pipelined_window, ChunkedModel};
pub use params::{BusParams, Direction, MemType, PcieGen};
pub use piecewise::PiecewiseModel;
pub use replay::RecordedBus;
pub use sim::BusSimulator;

/// Abstraction over anything that can move bytes between host and device
/// and report how long it took, in seconds.
///
/// The calibrator and validators are written against this trait, exactly as
/// GROPHECY++'s synthetic benchmark is written against CUDA's `cudaMemcpy`:
/// the model never sees inside the bus, only end-to-end timings.
pub trait Bus {
    /// Transfers `bytes` in direction `dir` using memory type `mem`,
    /// returning the elapsed wall time in seconds.
    fn transfer(&mut self, bytes: u64, dir: Direction, mem: MemType) -> f64;

    /// Fallible transfer: like [`Bus::transfer`], but a bus that can fail
    /// (e.g. [`FaultyBus`] under an active fault plan) reports the failed
    /// attempt instead of hiding it. The default implementation never
    /// fails, so plain buses are unaffected.
    fn try_transfer(
        &mut self,
        bytes: u64,
        dir: Direction,
        mem: MemType,
    ) -> Result<f64, TransferError> {
        Ok(self.transfer(bytes, dir, mem))
    }

    /// Human-readable description of the bus (for reports).
    fn describe(&self) -> String {
        "unnamed bus".to_string()
    }
}

/// `&mut B` is itself a bus, so wrappers like [`FaultyBus`] can borrow a
/// concretely-typed bus (e.g. a node's `BusSimulator`) without taking
/// ownership.
impl<B: Bus + ?Sized> Bus for &mut B {
    fn transfer(&mut self, bytes: u64, dir: Direction, mem: MemType) -> f64 {
        (**self).transfer(bytes, dir, mem)
    }

    fn try_transfer(
        &mut self,
        bytes: u64,
        dir: Direction,
        mem: MemType,
    ) -> Result<f64, TransferError> {
        (**self).try_transfer(bytes, dir, mem)
    }

    fn describe(&self) -> String {
        (**self).describe()
    }
}

/// A transfer attempt failed (only ever produced by fault-injecting buses;
/// real and simulated buses complete every transfer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransferError {
    /// The fault point that produced the failure.
    pub point: String,
    /// 1-based attempt count at that point when it fired.
    pub occurrence: u64,
}

impl std::fmt::Display for TransferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "transfer failed at fault point {} (occurrence {})",
            self.point, self.occurrence
        )
    }
}

impl std::error::Error for TransferError {}
