//! PCIe data-transfer modeling: the heart of GROPHECY++'s extension.
//!
//! The paper's first contribution (§III-C) is *"a simple but accurate model
//! for predicting PCIe transfer time that requires only two measurements to
//! derive parameters"*:
//!
//! ```text
//! T(d) = α + β·d        (Equation 1)
//! ```
//!
//! where `α` is the fixed per-transfer latency (~10 µs on the paper's
//! system) and `1/β` the asymptotic bandwidth (~2.5 GB/s on PCIe v1 x16
//! with pinned memory). `α` is measured as the time of a 1-byte transfer,
//! `β` from a single large (512 MB) transfer, each averaged over ten runs.
//!
//! This crate provides:
//!
//! * [`sim::BusSimulator`] — a mechanistic PCIe bus simulator standing in
//!   for the physical bus (we have no GPU): packetized DMA with per-TLP
//!   framing overhead, pinned vs pageable staging behaviour, direction
//!   asymmetry, and seeded measurement noise. This is the "real hardware"
//!   that the empirical model is calibrated against and validated on.
//! * [`model::LinearModel`] — Equation 1.
//! * [`calibrate::Calibrator`] — the two-point synthetic benchmark
//!   (automatically run "on each new system", i.e. for each bus instance).
//! * [`piecewise::PiecewiseModel`] — a log-size interpolation alternative
//!   used by the ablation study to show two points are enough (DESIGN.md
//!   D1).
//! * [`alloc::AllocModel`] — memory-allocation overhead, the paper's
//!   stated future work (§VII), included as an optional projection term.
//!
//! # Example
//!
//! ```
//! use gpp_pcie::{BusSimulator, BusParams, Calibrator};
//!
//! let mut bus = BusSimulator::new(BusParams::pcie_v1_x16(), 42);
//! let model = Calibrator::default().calibrate(&mut bus);
//! let t = model.h2d.predict(8 << 20); // 8 MB host-to-device, seconds
//! assert!(t > 0.0025 && t < 0.0045); // ~3.2 ms at ~2.5 GB/s
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod calibrate;
pub mod error;
pub mod model;
pub mod params;
pub mod piecewise;
pub mod replay;
pub mod sim;

pub use alloc::AllocModel;
pub use calibrate::{CalibratedBus, Calibrator};
pub use error::{error_magnitude, mean_error_magnitude, SweepValidation};
pub use model::LinearModel;
pub use params::{BusParams, Direction, MemType, PcieGen};
pub use piecewise::PiecewiseModel;
pub use replay::RecordedBus;
pub use sim::BusSimulator;

/// Abstraction over anything that can move bytes between host and device
/// and report how long it took, in seconds.
///
/// The calibrator and validators are written against this trait, exactly as
/// GROPHECY++'s synthetic benchmark is written against CUDA's `cudaMemcpy`:
/// the model never sees inside the bus, only end-to-end timings.
pub trait Bus {
    /// Transfers `bytes` in direction `dir` using memory type `mem`,
    /// returning the elapsed wall time in seconds.
    fn transfer(&mut self, bytes: u64, dir: Direction, mem: MemType) -> f64;

    /// Human-readable description of the bus (for reports).
    fn describe(&self) -> String {
        "unnamed bus".to_string()
    }
}
