//! A trace-driven bus: calibrate GROPHECY++ against *recorded*
//! measurements from a real machine.
//!
//! The paper's synthetic benchmark runs on live hardware; when porting
//! this framework to a machine you cannot run code on (or when replaying
//! a published dataset), a table of `(bytes, direction, memtype, seconds)`
//! samples stands in. [`RecordedBus`] interpolates the table log-linearly
//! in size — the same scheme as [`crate::PiecewiseModel`] — so the
//! calibrator and validators work unmodified against it.
//!
//! The text format is one sample per line (`#` comments allowed):
//!
//! ```text
//! # bytes  direction  memtype  seconds
//! 1        h2d        pinned   9.9e-6
//! 536870912 h2d       pinned   0.215
//! ```

use crate::params::{Direction, MemType};
use crate::piecewise::PiecewiseModel;
use crate::Bus;
use std::collections::BTreeMap;

/// A bus that replays recorded transfer times. Deterministic: repeated
/// queries return identical values (a recorded trace has no fresh noise).
#[derive(Debug, Clone)]
pub struct RecordedBus {
    /// One interpolation model per (direction, memtype) curve.
    curves: BTreeMap<(u8, u8), PiecewiseModel>,
    name: String,
}

fn key(dir: Direction, mem: MemType) -> (u8, u8) {
    (
        match dir {
            Direction::HostToDevice => 0,
            Direction::DeviceToHost => 1,
        },
        match mem {
            MemType::Pinned => 0,
            MemType::Pageable => 1,
        },
    )
}

/// A trace-parsing failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// Offending line.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceError {}

impl RecordedBus {
    /// Builds a bus from explicit samples.
    ///
    /// Each `(direction, memtype)` curve needs at least two samples.
    /// Curves with no samples simply reject queries (panic) — record what
    /// you intend to use.
    pub fn from_samples(
        name: impl Into<String>,
        samples: &[(u64, Direction, MemType, f64)],
    ) -> Result<Self, TraceError> {
        let mut grouped: BTreeMap<(u8, u8), Vec<(u64, f64)>> = BTreeMap::new();
        for &(bytes, dir, mem, secs) in samples {
            grouped
                .entry(key(dir, mem))
                .or_default()
                .push((bytes, secs));
        }
        let mut curves = BTreeMap::new();
        for (k, mut pts) in grouped {
            pts.sort_by_key(|&(b, _)| b);
            pts.dedup_by_key(|&mut (b, _)| b);
            if pts.len() < 2 {
                return Err(TraceError {
                    line: 0,
                    message: "each recorded curve needs at least two distinct sizes".into(),
                });
            }
            curves.insert(k, PiecewiseModel::from_knots(pts));
        }
        Ok(RecordedBus {
            curves,
            name: name.into(),
        })
    }

    /// Parses the one-sample-per-line text format.
    pub fn parse(name: impl Into<String>, input: &str) -> Result<Self, TraceError> {
        let mut samples = Vec::new();
        for (lineno, raw) in input.lines().enumerate() {
            let lineno = lineno + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut w = line.split_whitespace();
            let mut field = |what: &str| {
                w.next().ok_or(TraceError {
                    line: lineno,
                    message: format!("missing {what}"),
                })
            };
            let bytes: u64 = field("bytes")?.parse().map_err(|_| TraceError {
                line: lineno,
                message: "bad byte count".into(),
            })?;
            let dir = match field("direction")? {
                "h2d" => Direction::HostToDevice,
                "d2h" => Direction::DeviceToHost,
                other => {
                    return Err(TraceError {
                        line: lineno,
                        message: format!("direction must be h2d|d2h, got `{other}`"),
                    })
                }
            };
            let mem = match field("memtype")? {
                "pinned" => MemType::Pinned,
                "pageable" => MemType::Pageable,
                other => {
                    return Err(TraceError {
                        line: lineno,
                        message: format!("memtype must be pinned|pageable, got `{other}`"),
                    })
                }
            };
            let secs: f64 = field("seconds")?.parse().map_err(|_| TraceError {
                line: lineno,
                message: "bad seconds".into(),
            })?;
            if !(secs.is_finite() && secs > 0.0) {
                return Err(TraceError {
                    line: lineno,
                    message: "seconds must be positive".into(),
                });
            }
            samples.push((bytes, dir, mem, secs));
        }
        Self::from_samples(name, &samples)
    }

    /// True if the trace covers this (direction, memtype) curve.
    pub fn covers(&self, dir: Direction, mem: MemType) -> bool {
        self.curves.contains_key(&key(dir, mem))
    }
}

impl Bus for RecordedBus {
    fn transfer(&mut self, bytes: u64, dir: Direction, mem: MemType) -> f64 {
        let curve = self
            .curves
            .get(&key(dir, mem))
            .unwrap_or_else(|| panic!("recorded trace has no {dir}/{mem} samples"));
        curve.predict(bytes)
    }

    fn describe(&self) -> String {
        format!(
            "recorded trace `{}` ({} curves)",
            self.name,
            self.curves.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Calibrator;

    const TRACE: &str = "\
# A hand-recorded PCIe v1 pinned trace.
1          h2d pinned 9.9e-6
1024       h2d pinned 1.03e-5
1048576    h2d pinned 4.3e-4
536870912  h2d pinned 0.215
1          d2h pinned 1.13e-5
1048576    d2h pinned 4.4e-4
536870912  d2h pinned 0.216
";

    #[test]
    fn parses_and_replays() {
        let mut bus = RecordedBus::parse("eureka", TRACE).unwrap();
        assert!(bus.covers(Direction::HostToDevice, MemType::Pinned));
        assert!(!bus.covers(Direction::HostToDevice, MemType::Pageable));
        let t = bus.transfer(1024, Direction::HostToDevice, MemType::Pinned);
        assert!((t - 1.03e-5).abs() < 1e-12); // exact at a knot
                                              // Deterministic replay.
        assert_eq!(
            t,
            bus.transfer(1024, Direction::HostToDevice, MemType::Pinned)
        );
        assert!(bus.describe().contains("eureka"));
    }

    #[test]
    fn calibrator_works_against_a_trace() {
        let mut bus = RecordedBus::parse("eureka", TRACE).unwrap();
        let model = Calibrator::default().calibrate(&mut bus);
        // α comes straight from the recorded 1-byte sample.
        assert!((model.h2d.alpha - 9.9e-6).abs() < 1e-9);
        // β from the 512 MB sample: 0.215 s / 512 MB ≈ 2.50 GB/s.
        assert!((model.h2d.bandwidth() / 1e9 - 2.497).abs() < 0.02);
    }

    #[test]
    fn interpolates_between_knots() {
        let mut bus = RecordedBus::parse("t", TRACE).unwrap();
        let t = bus.transfer(2048, Direction::HostToDevice, MemType::Pinned);
        assert!(t > 1.03e-5 && t < 4.3e-4);
    }

    #[test]
    fn parse_errors_carry_lines() {
        let e = RecordedBus::parse("x", "1 sideways pinned 1e-6\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.to_string().contains("h2d|d2h"));
        let e = RecordedBus::parse("x", "1 h2d pinned -3.0\n").unwrap_err();
        assert!(e.message.contains("positive"));
        let e = RecordedBus::parse("x", "1 h2d pinned 1e-6\n").unwrap_err();
        assert!(e.message.contains("two distinct sizes"));
    }

    #[test]
    #[should_panic(expected = "no CPU-to-GPU/pageable samples")]
    fn uncovered_curve_panics_loudly() {
        let mut bus = RecordedBus::parse("t", TRACE).unwrap();
        let _ = bus.transfer(1024, Direction::HostToDevice, MemType::Pageable);
    }
}
