//! Prediction-error metrics and full-sweep validation (§V-A).
//!
//! The paper characterizes model accuracy with the *error magnitude* — "the
//! absolute value of the percent difference between the predicted and
//! measured values" — evaluated over all power-of-two transfer sizes from
//! 1 B to 512 MB, and summarized by the arithmetic mean across sizes.

use crate::model::DirectionalModel;
use crate::params::{Direction, MemType};
use crate::Bus;

/// Error magnitude in percent: `|pred - meas| / meas * 100`.
///
/// # Panics
/// Panics if `measured` is not strictly positive.
pub fn error_magnitude(predicted: f64, measured: f64) -> f64 {
    assert!(
        measured > 0.0,
        "measured value must be positive, got {measured}"
    );
    ((predicted - measured) / measured).abs() * 100.0
}

/// Arithmetic mean of error magnitudes.
pub fn mean_error_magnitude(pairs: &[(f64, f64)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    pairs
        .iter()
        .map(|&(p, m)| error_magnitude(p, m))
        .sum::<f64>()
        / pairs.len() as f64
}

/// One row of the validation sweep: a transfer size with its measured and
/// predicted times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Transfer size in bytes.
    pub bytes: u64,
    /// Mean measured time, seconds.
    pub measured: f64,
    /// Model-predicted time, seconds.
    pub predicted: f64,
}

impl SweepPoint {
    /// Error magnitude of this point in percent.
    pub fn error(&self) -> f64 {
        error_magnitude(self.predicted, self.measured)
    }
}

/// Results of validating a model against a bus over the full size sweep,
/// for one direction.
#[derive(Debug, Clone)]
pub struct SweepValidation {
    /// Direction validated.
    pub dir: Direction,
    /// Memory type used.
    pub mem: MemType,
    /// One point per power-of-two size, ascending.
    pub points: Vec<SweepPoint>,
}

impl SweepValidation {
    /// Measures every power-of-two size from `1 << lo_pow` to `1 << hi_pow`
    /// (inclusive), averaging `runs` transfers per size, and compares
    /// against the model. The paper's sweep is 1 B..=512 MB, i.e. powers
    /// 0..=29, with 10 runs.
    pub fn run(
        bus: &mut dyn Bus,
        model: &DirectionalModel,
        dir: Direction,
        mem: MemType,
        lo_pow: u32,
        hi_pow: u32,
        runs: u32,
    ) -> Self {
        assert!(lo_pow <= hi_pow, "lo_pow must be <= hi_pow");
        let runs = runs.max(1);
        let points = (lo_pow..=hi_pow)
            .map(|p| {
                let bytes = 1u64 << p;
                let measured: f64 = (0..runs)
                    .map(|_| bus.transfer(bytes, dir, mem))
                    .sum::<f64>()
                    / runs as f64;
                SweepPoint {
                    bytes,
                    measured,
                    predicted: model.predict(bytes, dir),
                }
            })
            .collect();
        SweepValidation { dir, mem, points }
    }

    /// The paper's sweep: 1 B to 512 MB, 10 runs per size.
    pub fn paper_sweep(
        bus: &mut dyn Bus,
        model: &DirectionalModel,
        dir: Direction,
        mem: MemType,
    ) -> Self {
        Self::run(bus, model, dir, mem, 0, 29, 10)
    }

    /// Mean error magnitude across all sizes (the §V-A summary statistic).
    pub fn mean_error(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(SweepPoint::error).sum::<f64>() / self.points.len() as f64
    }

    /// Maximum error magnitude across sizes.
    pub fn max_error(&self) -> f64 {
        self.points
            .iter()
            .map(SweepPoint::error)
            .fold(0.0, f64::max)
    }

    /// Mean error over only the points at or above the given size — the
    /// paper notes errors are "essentially zero for all transfer sizes
    /// larger than 1 MB".
    pub fn mean_error_above(&self, bytes: u64) -> f64 {
        let big: Vec<f64> = self
            .points
            .iter()
            .filter(|p| p.bytes >= bytes)
            .map(SweepPoint::error)
            .collect();
        if big.is_empty() {
            0.0
        } else {
            big.iter().sum::<f64>() / big.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::Calibrator;
    use crate::params::BusParams;
    use crate::sim::BusSimulator;

    #[test]
    fn error_magnitude_basics() {
        assert_eq!(error_magnitude(110.0, 100.0), 10.0);
        assert_eq!(error_magnitude(90.0, 100.0), 10.0);
        assert_eq!(error_magnitude(100.0, 100.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_measured_panics() {
        let _ = error_magnitude(1.0, 0.0);
    }

    #[test]
    fn mean_error_magnitude_averages() {
        let pairs = [(110.0, 100.0), (100.0, 100.0), (130.0, 100.0)];
        assert!((mean_error_magnitude(&pairs) - (10.0 + 0.0 + 30.0) / 3.0).abs() < 1e-12);
        assert_eq!(mean_error_magnitude(&[]), 0.0);
    }

    #[test]
    fn quiet_sweep_error_is_tiny_at_large_sizes() {
        let mut bus = BusSimulator::new(BusParams::pcie_v1_x16().quiet(), 1);
        let model = Calibrator::default().calibrate(&mut bus);
        let v = SweepValidation::paper_sweep(
            &mut bus,
            &model,
            Direction::HostToDevice,
            MemType::Pinned,
        );
        // Above 1 MB the linear model matches the mechanism almost exactly.
        assert!(
            v.mean_error_above(1 << 20) < 0.5,
            "err {}",
            v.mean_error_above(1 << 20)
        );
        assert_eq!(v.points.len(), 30);
    }

    #[test]
    fn noisy_sweep_matches_paper_error_band() {
        // §V-A: mean error 2.0% (H2D) and 0.8% (D2H); max 6.4% / 3.3%.
        // Our seeds land in the same regime (a few percent mean).
        let mut bus = BusSimulator::new(BusParams::pcie_v1_x16(), 42);
        let model = Calibrator::default().calibrate(&mut bus);
        for dir in Direction::ALL {
            let v = SweepValidation::paper_sweep(&mut bus, &model, dir, MemType::Pinned);
            assert!(v.mean_error() < 6.0, "{dir} mean error {}", v.mean_error());
            assert!(v.max_error() < 40.0, "{dir} max error {}", v.max_error());
        }
    }

    #[test]
    fn error_is_larger_at_small_sizes() {
        // Paper: "the relative error is larger at smaller data sizes".
        // A statistical property, so aggregate over several noise seeds
        // rather than depending on one RNG stream landing favorably.
        let (mut small, mut large) = (0.0, 0.0);
        for seed in 1..=8 {
            let mut bus = BusSimulator::new(BusParams::pcie_v1_x16(), seed);
            let model = Calibrator::default().calibrate(&mut bus);
            let v = SweepValidation::paper_sweep(
                &mut bus,
                &model,
                Direction::HostToDevice,
                MemType::Pinned,
            );
            small += mean_of(&v.points[0..10]);
            large += mean_of(&v.points[20..30]);
        }
        assert!(small > large, "small {small} vs large {large}");
    }

    fn mean_of(pts: &[SweepPoint]) -> f64 {
        pts.iter().map(SweepPoint::error).sum::<f64>() / pts.len() as f64
    }

    #[test]
    fn sweep_point_error() {
        let p = SweepPoint {
            bytes: 1024,
            measured: 2.0,
            predicted: 2.2,
        };
        assert!((p.error() - 10.0).abs() < 1e-9);
    }
}
