//! A richer empirical model for the ablation study (DESIGN.md D1).
//!
//! The paper argues that a two-point linear model is sufficient. To test
//! that claim we also implement the obvious richer alternative: measure
//! *every* power-of-two size and interpolate log-linearly between them.
//! The ablation bench compares both against held-out measurements; the
//! linear model should be within a few percent of the piecewise model for
//! sizes above ~1 KB, supporting the paper's simplicity argument.

use crate::params::{Direction, MemType};
use crate::Bus;

/// Piecewise log-size interpolation model built from a full sweep of
/// power-of-two calibration measurements.
#[derive(Debug, Clone)]
pub struct PiecewiseModel {
    /// `(bytes, seconds)` knots, ascending in bytes.
    knots: Vec<(u64, f64)>,
}

impl PiecewiseModel {
    /// Builds the model from explicit knots.
    ///
    /// # Panics
    /// Panics if fewer than two knots are given or they are not strictly
    /// ascending in size.
    pub fn from_knots(knots: Vec<(u64, f64)>) -> Self {
        assert!(knots.len() >= 2, "need at least two knots");
        assert!(
            knots.windows(2).all(|w| w[0].0 < w[1].0),
            "knots must be strictly ascending"
        );
        PiecewiseModel { knots }
    }

    /// Calibrates by measuring every power-of-two size in
    /// `lo_pow ..= hi_pow`, `runs` averaged transfers each. This costs
    /// `(hi-lo+1) × runs` transfers versus the linear model's `2 × runs` —
    /// the cost the paper avoids.
    pub fn calibrate(
        bus: &mut dyn Bus,
        dir: Direction,
        mem: MemType,
        lo_pow: u32,
        hi_pow: u32,
        runs: u32,
    ) -> Self {
        let runs = runs.max(1);
        let knots = (lo_pow..=hi_pow)
            .map(|p| {
                let bytes = 1u64 << p;
                let t: f64 = (0..runs)
                    .map(|_| bus.transfer(bytes, dir, mem))
                    .sum::<f64>()
                    / runs as f64;
                (bytes, t)
            })
            .collect();
        PiecewiseModel::from_knots(knots)
    }

    /// Number of calibration measurements this model required.
    pub fn knot_count(&self) -> usize {
        self.knots.len()
    }

    /// Predicted time for `d` bytes: exact at knots, log-log interpolated
    /// between them, linearly extrapolated (in time per byte) beyond the
    /// ends.
    pub fn predict(&self, d: u64) -> f64 {
        let d = d.max(1);
        let first = self.knots[0];
        let last = *self.knots.last().expect("non-empty by construction");
        if d <= first.0 {
            return first.1;
        }
        if d >= last.0 {
            // Extrapolate at the final marginal bandwidth.
            let prev = self.knots[self.knots.len() - 2];
            let per_byte = (last.1 - prev.1) / (last.0 - prev.0) as f64;
            return last.1 + per_byte * (d - last.0) as f64;
        }
        let i = self.knots.partition_point(|&(b, _)| b <= d) - 1;
        let (b0, t0) = self.knots[i];
        let (b1, t1) = self.knots[i + 1];
        if b0 == d {
            return t0;
        }
        // Log-log interpolation tracks power-law behaviour across decades.
        let f = ((d as f64).ln() - (b0 as f64).ln()) / ((b1 as f64).ln() - (b0 as f64).ln());
        (t0.ln() + f * (t1.ln() - t0.ln())).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::BusParams;
    use crate::sim::BusSimulator;

    fn quiet_model() -> (BusSimulator, PiecewiseModel) {
        let mut bus = BusSimulator::new(BusParams::pcie_v1_x16().quiet(), 1);
        let m =
            PiecewiseModel::calibrate(&mut bus, Direction::HostToDevice, MemType::Pinned, 0, 29, 3);
        (bus, m)
    }

    #[test]
    fn exact_at_knots_on_quiet_bus() {
        let (bus, m) = quiet_model();
        for p in [0u32, 10, 20, 29] {
            let bytes = 1u64 << p;
            let ideal = bus.ideal_time(bytes, Direction::HostToDevice, MemType::Pinned);
            let pred = m.predict(bytes);
            assert!(
                (pred / ideal - 1.0).abs() < 1e-9,
                "2^{p}: {pred} vs {ideal}"
            );
        }
    }

    #[test]
    fn interpolation_between_knots_is_close() {
        let (bus, m) = quiet_model();
        for bytes in [3u64, 1500, 300_000, 5_000_000, 100_000_000] {
            let ideal = bus.ideal_time(bytes, Direction::HostToDevice, MemType::Pinned);
            let pred = m.predict(bytes);
            let err = (pred / ideal - 1.0).abs();
            assert!(err < 0.10, "{bytes} B: err {err}");
        }
    }

    #[test]
    fn extrapolation_beyond_largest_knot() {
        let (bus, m) = quiet_model();
        let bytes = 1u64 << 31; // 2 GB, beyond the 512 MB sweep
        let ideal = bus.ideal_time(bytes, Direction::HostToDevice, MemType::Pinned);
        let pred = m.predict(bytes);
        assert!((pred / ideal - 1.0).abs() < 0.02);
    }

    #[test]
    fn below_smallest_knot_clamps() {
        let m = PiecewiseModel::from_knots(vec![(8, 1e-5), (16, 2e-5)]);
        assert_eq!(m.predict(1), 1e-5);
        assert_eq!(m.predict(0), 1e-5);
    }

    #[test]
    fn knot_count_reports_calibration_cost() {
        let (_, m) = quiet_model();
        assert_eq!(m.knot_count(), 30);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn one_knot_rejected() {
        let _ = PiecewiseModel::from_knots(vec![(8, 1e-5)]);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unordered_knots_rejected() {
        let _ = PiecewiseModel::from_knots(vec![(16, 1e-5), (8, 2e-5)]);
    }
}
