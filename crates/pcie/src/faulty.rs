//! A fault-injecting [`Bus`] wrapper.
//!
//! [`FaultyBus`] sits between a consumer (calibrator, sweep validation,
//! measurement loop) and a real bus, consulting a seeded
//! [`FaultInjector`] on every transfer:
//!
//! * [`gpp_fault::PCIE_TRANSFER_ERROR`] — the attempt fails outright.
//!   [`Bus::try_transfer`] surfaces it as a [`TransferError`]; the
//!   infallible [`Bus::transfer`] retries internally (bounded) and charges
//!   the failed attempts' wall time, like a driver-level retry would.
//! * [`gpp_fault::PCIE_TRANSFER_STALL`] — the transfer completes but its
//!   time is multiplied by the rule's factor (DMA engine stall, contention
//!   burst).
//! * [`gpp_fault::PCIE_CALIBRATION_OUTLIER`] — identical mechanically to a
//!   stall, but named separately so a plan can corrupt *calibration*
//!   measurements specifically (the calibrator talks to the bus through
//!   this wrapper) and the robust calibration path can be tested against
//!   exactly the fault class it exists to reject.
//!
//! The wrapper always takes the inner measurement **before** deciding the
//! fault, so the inner bus's RNG stream advances exactly once per attempt
//! — with an inactive injector the wrapped bus is bit-identical to the
//! bare one.

use crate::params::{Direction, MemType};
use crate::{Bus, TransferError};
use gpp_fault::FaultInjector;
use std::sync::Arc;

/// How many times the infallible [`Bus::transfer`] path retries an
/// injected error before giving up and returning the accumulated time
/// anyway (a real driver eventually completes or the job dies; the model
/// must return *some* finite cost either way).
pub const MAX_INTERNAL_RETRIES: u32 = 8;

/// A [`Bus`] wrapper that injects seeded faults. See the module docs.
pub struct FaultyBus<B: Bus> {
    inner: B,
    faults: Arc<FaultInjector>,
    attempts: u64,
    machine: Option<String>,
}

impl<B: Bus> FaultyBus<B> {
    /// Wraps `inner`, consulting `faults` on every transfer.
    pub fn new(inner: B, faults: Arc<FaultInjector>) -> Self {
        FaultyBus {
            inner,
            faults,
            attempts: 0,
            machine: None,
        }
    }

    /// Labels this bus with the machine it belongs to, so plans can scope
    /// rules to one machine via `point@machine` names (bare rules still
    /// apply when no scoped rule exists — see
    /// [`FaultInjector::fire_factor_scoped`]).
    pub fn with_machine(mut self, machine: impl Into<String>) -> Self {
        self.machine = Some(machine.into());
        self
    }

    /// The injector this bus consults.
    pub fn injector(&self) -> &Arc<FaultInjector> {
        &self.faults
    }

    /// The wrapped bus.
    pub fn inner_mut(&mut self) -> &mut B {
        &mut self.inner
    }

    /// Unwraps, returning the inner bus.
    pub fn into_inner(self) -> B {
        self.inner
    }

    /// One transfer attempt: inner time first (inner RNG advances exactly
    /// once), then the fault decision in a fixed order (error, stall,
    /// outlier).
    fn attempt(
        &mut self,
        bytes: u64,
        dir: Direction,
        mem: MemType,
    ) -> (f64, Option<TransferError>) {
        let mut t = self.inner.transfer(bytes, dir, mem);
        self.attempts += 1;
        if !self.faults.is_active() {
            return (t, None);
        }
        let machine = self.machine.as_deref();
        if self
            .faults
            .fires_scoped(gpp_fault::PCIE_TRANSFER_ERROR, machine)
        {
            return (
                t,
                Some(TransferError {
                    point: gpp_fault::PCIE_TRANSFER_ERROR.to_string(),
                    occurrence: self.attempts,
                }),
            );
        }
        if let Some(factor) = self
            .faults
            .fire_factor_scoped(gpp_fault::PCIE_TRANSFER_STALL, machine)
        {
            t *= factor;
        }
        if let Some(factor) = self
            .faults
            .fire_factor_scoped(gpp_fault::PCIE_CALIBRATION_OUTLIER, machine)
        {
            t *= factor;
        }
        (t, None)
    }
}

impl<B: Bus> Bus for FaultyBus<B> {
    fn transfer(&mut self, bytes: u64, dir: Direction, mem: MemType) -> f64 {
        let mut total = 0.0;
        for _ in 0..=MAX_INTERNAL_RETRIES {
            let (t, err) = self.attempt(bytes, dir, mem);
            total += t;
            if err.is_none() {
                break;
            }
        }
        total
    }

    fn try_transfer(
        &mut self,
        bytes: u64,
        dir: Direction,
        mem: MemType,
    ) -> Result<f64, TransferError> {
        match self.attempt(bytes, dir, mem) {
            (t, None) => Ok(t),
            (_, Some(err)) => Err(err),
        }
    }

    fn describe(&self) -> String {
        format!("faulty({})", self.inner.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::BusParams;
    use crate::sim::BusSimulator;
    use gpp_fault::FaultPlan;

    fn quiet_bus(seed: u64) -> BusSimulator {
        BusSimulator::new(BusParams::pcie_v1_x16().quiet(), seed)
    }

    #[test]
    fn inactive_injector_is_transparent() {
        let mut bare = quiet_bus(7);
        let mut wrapped = FaultyBus::new(quiet_bus(7), FaultInjector::disabled());
        for i in 1..=20u64 {
            let bytes = i * 4096;
            let a = bare.transfer(bytes, Direction::HostToDevice, MemType::Pinned);
            let b = wrapped.transfer(bytes, Direction::HostToDevice, MemType::Pinned);
            assert_eq!(a.to_bits(), b.to_bits(), "transfer {i} diverged");
        }
    }

    #[test]
    fn error_point_fails_try_transfer_and_retries_in_transfer() {
        let plan: FaultPlan = "pcie.transfer.error:first=2".parse().unwrap();
        let mut bus = FaultyBus::new(quiet_bus(1), Arc::new(FaultInjector::new(plan)));
        let err = bus
            .try_transfer(1 << 20, Direction::HostToDevice, MemType::Pinned)
            .unwrap_err();
        assert_eq!(err.point, gpp_fault::PCIE_TRANSFER_ERROR);
        assert_eq!(err.occurrence, 1);
        // The infallible path absorbs the one remaining scheduled error:
        // attempt 2 fails, attempt 3 succeeds, both attempts charged.
        let clean = quiet_bus(1).transfer(1 << 20, Direction::HostToDevice, MemType::Pinned);
        let t = bus.transfer(1 << 20, Direction::HostToDevice, MemType::Pinned);
        assert!(t > 1.5 * clean, "retry cost not charged: {t} vs {clean}");
    }

    #[test]
    fn stall_and_outlier_inflate_time() {
        for point in ["pcie.transfer.stall", "pcie.calibration.outlier"] {
            let plan: FaultPlan = format!("{point}:always,factor=10").parse().unwrap();
            let mut bus = FaultyBus::new(quiet_bus(3), Arc::new(FaultInjector::new(plan)));
            let clean = quiet_bus(3).transfer(8 << 20, Direction::HostToDevice, MemType::Pinned);
            let t = bus
                .try_transfer(8 << 20, Direction::HostToDevice, MemType::Pinned)
                .unwrap();
            assert!(
                (9.0 * clean..11.0 * clean).contains(&t),
                "{point}: {t} vs clean {clean}"
            );
        }
    }

    #[test]
    fn exhausted_retries_still_return_finite_time() {
        let plan: FaultPlan = "pcie.transfer.error:always".parse().unwrap();
        let mut bus = FaultyBus::new(quiet_bus(1), Arc::new(FaultInjector::new(plan)));
        let t = bus.transfer(4096, Direction::DeviceToHost, MemType::Pinned);
        assert!(t.is_finite() && t > 0.0);
        assert_eq!(
            bus.injector().total_fired(),
            u64::from(MAX_INTERNAL_RETRIES) + 1
        );
    }

    #[test]
    fn machine_scoped_rules_hit_only_their_machine() {
        let plan: FaultPlan = "pcie.transfer.stall@v2:always,factor=10".parse().unwrap();
        let faults = Arc::new(FaultInjector::new(plan));
        let clean = quiet_bus(3).transfer(8 << 20, Direction::HostToDevice, MemType::Pinned);
        let mut on_v2 = FaultyBus::new(quiet_bus(3), faults.clone()).with_machine("v2");
        let t = on_v2.transfer(8 << 20, Direction::HostToDevice, MemType::Pinned);
        assert!(t > 9.0 * clean, "scoped stall missing: {t} vs {clean}");
        let mut on_eureka = FaultyBus::new(quiet_bus(3), faults).with_machine("eureka");
        let t = on_eureka.transfer(8 << 20, Direction::HostToDevice, MemType::Pinned);
        assert_eq!(t.to_bits(), clean.to_bits(), "bare machine affected");
    }

    #[test]
    fn describe_marks_the_wrapper() {
        let bus = FaultyBus::new(quiet_bus(1), FaultInjector::disabled());
        assert!(bus.describe().starts_with("faulty("));
    }
}
