//! Equation 1: the two-parameter linear transfer-time model.

/// The paper's linear model `T(d) = α + β·d` (Equation 1).
///
/// `α` is the fixed per-transfer overhead in seconds ("the latency of
/// sending the first byte"); `β` is seconds per byte (the inverse of the
/// asymptotic bandwidth).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearModel {
    /// Fixed latency, seconds.
    pub alpha: f64,
    /// Seconds per byte.
    pub beta: f64,
}

impl LinearModel {
    /// Creates a model from explicit parameters.
    ///
    /// # Panics
    /// Panics if either parameter is negative or non-finite.
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(
            alpha.is_finite() && alpha >= 0.0,
            "alpha must be >= 0, got {alpha}"
        );
        assert!(
            beta.is_finite() && beta >= 0.0,
            "beta must be >= 0, got {beta}"
        );
        LinearModel { alpha, beta }
    }

    /// Derives the model from the two calibration measurements (§III-C):
    /// `t_small` = measured time of a 1-byte transfer (becomes α), and
    /// `t_large` over `s_large` bytes (their ratio becomes β).
    pub fn from_two_points(t_small: f64, t_large: f64, s_large: u64) -> Self {
        LinearModel::new(t_small, t_large / s_large as f64)
    }

    /// Predicted transfer time in seconds for `d` bytes.
    pub fn predict(&self, d: u64) -> f64 {
        self.alpha + self.beta * d as f64
    }

    /// Asymptotic bandwidth `1/β` in bytes per second.
    pub fn bandwidth(&self) -> f64 {
        if self.beta == 0.0 {
            f64::INFINITY
        } else {
            1.0 / self.beta
        }
    }

    /// The transfer size at which fixed overhead and streaming time are
    /// equal (`α = β·d`): below this, latency dominates; above, bandwidth.
    pub fn breakeven_bytes(&self) -> f64 {
        if self.beta == 0.0 {
            f64::INFINITY
        } else {
            self.alpha / self.beta
        }
    }
}

impl std::fmt::Display for LinearModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "T(d) = {:.2} us + d / {:.2} GB/s",
            self.alpha * 1e6,
            self.bandwidth() / 1e9
        )
    }
}

/// A calibrated model pair for one memory type: one linear model per
/// transfer direction (the paper calibrates each independently — Fig. 2
/// shows distinct curves for each direction).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DirectionalModel {
    /// Host→device model.
    pub h2d: LinearModel,
    /// Device→host model.
    pub d2h: LinearModel,
}

impl DirectionalModel {
    /// Predicts a transfer in the given direction.
    pub fn predict(&self, d: u64, dir: crate::Direction) -> f64 {
        match dir {
            crate::Direction::HostToDevice => self.h2d.predict(d),
            crate::Direction::DeviceToHost => self.d2h.predict(d),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Direction;

    #[test]
    fn predict_is_affine() {
        let m = LinearModel::new(10e-6, 1.0 / 2.5e9);
        assert!((m.predict(0) - 10e-6).abs() < 1e-15);
        let one_mb = m.predict(1 << 20);
        assert!((one_mb - (10e-6 + (1 << 20) as f64 / 2.5e9)).abs() < 1e-15);
    }

    #[test]
    fn from_two_points_matches_paper_procedure() {
        // t_S = 10 us; 512 MB takes 0.2 s → β = 0.2 / 512MB.
        let m = LinearModel::from_two_points(10e-6, 0.2, 512 << 20);
        assert_eq!(m.alpha, 10e-6);
        assert!((m.bandwidth() - (512u64 << 20) as f64 / 0.2).abs() < 1.0);
    }

    #[test]
    fn bandwidth_and_breakeven() {
        let m = LinearModel::new(10e-6, 4e-10); // 2.5 GB/s
        assert!((m.bandwidth() - 2.5e9).abs() < 1.0);
        assert!((m.breakeven_bytes() - 25_000.0).abs() < 1.0);
    }

    #[test]
    fn zero_beta_edge_cases() {
        let m = LinearModel::new(1e-6, 0.0);
        assert_eq!(m.bandwidth(), f64::INFINITY);
        assert_eq!(m.breakeven_bytes(), f64::INFINITY);
        assert_eq!(m.predict(u64::MAX), 1e-6);
    }

    #[test]
    #[should_panic(expected = "alpha must be")]
    fn negative_alpha_rejected() {
        let _ = LinearModel::new(-1.0, 0.0);
    }

    #[test]
    fn directional_dispatch() {
        let dm = DirectionalModel {
            h2d: LinearModel::new(1e-6, 1e-9),
            d2h: LinearModel::new(2e-6, 2e-9),
        };
        assert!(
            dm.predict(1000, Direction::HostToDevice) < dm.predict(1000, Direction::DeviceToHost)
        );
    }

    #[test]
    fn display_is_readable() {
        let m = LinearModel::new(10e-6, 4e-10);
        let s = m.to_string();
        assert!(s.contains("10.00 us") && s.contains("2.50 GB/s"), "{s}");
    }
}
