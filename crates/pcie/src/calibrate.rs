//! The two-point calibration benchmark (§III-C).
//!
//! "To determine α, we measure the transfer time t_S of a single byte; we
//! then set α = t_S. To determine β, we measure the time t_L of a large
//! transfer of size s_L = 512 MB and then set β = t_L / s_L. Both t_S and
//! t_L are averaged across ten runs to reduce the impact of noise. These
//! two measurements are performed by a simple synthetic benchmark, which is
//! automatically invoked by GROPHECY++ when run on a new system."

use crate::model::{DirectionalModel, LinearModel};
use crate::params::{Direction, MemType};
use crate::Bus;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Configuration of the calibration benchmark. The defaults are the
/// paper's choices; the footnote notes 512 MB "is chosen rather
/// arbitrarily; any size larger than a few megabytes would be sufficient".
#[derive(Debug, Clone)]
pub struct Calibrator {
    /// Size of the small transfer measuring α.
    pub small_bytes: u64,
    /// Size of the large transfer measuring β.
    pub large_bytes: u64,
    /// Runs to average per measurement.
    pub runs: u32,
    /// Host memory type to calibrate for (the paper assumes pinned).
    pub mem: MemType,
}

impl Default for Calibrator {
    fn default() -> Self {
        Calibrator {
            small_bytes: 1,
            large_bytes: 512 << 20,
            runs: 10,
            mem: MemType::Pinned,
        }
    }
}

impl Calibrator {
    /// Runs the synthetic benchmark against a bus and derives per-direction
    /// linear models.
    pub fn calibrate(&self, bus: &mut dyn Bus) -> DirectionalModel {
        DirectionalModel {
            h2d: self.calibrate_direction(bus, Direction::HostToDevice),
            d2h: self.calibrate_direction(bus, Direction::DeviceToHost),
        }
    }

    /// Calibrates a single direction.
    pub fn calibrate_direction(&self, bus: &mut dyn Bus, dir: Direction) -> LinearModel {
        let t_small = self.mean_time(bus, self.small_bytes, dir);
        let t_large = self.mean_time(bus, self.large_bytes, dir);
        LinearModel::from_two_points(t_small, t_large, self.large_bytes)
    }

    fn mean_time(&self, bus: &mut dyn Bus, bytes: u64, dir: Direction) -> f64 {
        let runs = self.runs.max(1);
        let mut samples: Vec<f64> = (0..runs)
            .map(|_| bus.transfer(bytes, dir, self.mem))
            .collect();
        // The paper averages ten runs "to reduce the impact of noise"; we
        // additionally trim the extremes so a single OS preemption landing
        // on a microsecond-scale calibration transfer cannot poison α —
        // a robustness improvement over the plain mean, noted in
        // EXPERIMENTS.md.
        if samples.len() >= 3 {
            samples.sort_by(f64::total_cmp);
            samples.pop();
            samples.remove(0);
        }
        samples.iter().sum::<f64>() / samples.len() as f64
    }
}

/// A bus wrapper that lazily calibrates on first use and caches the model —
/// mirroring GROPHECY++'s "automatically invoked when run on a new system"
/// behaviour. Thread-safe so concurrent projections share one calibration.
pub struct CalibratedBus<B: Bus> {
    bus: Mutex<B>,
    calibrator: Calibrator,
    cache: Mutex<HashMap<MemTypeKey, DirectionalModel>>,
}

#[derive(PartialEq, Eq, Hash, Clone, Copy)]
struct MemTypeKey(MemType);

impl<B: Bus> CalibratedBus<B> {
    /// Wraps a bus with a calibrator.
    pub fn new(bus: B, calibrator: Calibrator) -> Self {
        CalibratedBus {
            bus: Mutex::new(bus),
            calibrator,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// The calibrated model for a memory type, measuring it on first
    /// request.
    pub fn model(&self, mem: MemType) -> DirectionalModel {
        if let Some(m) = self.cache.lock().get(&MemTypeKey(mem)) {
            return *m;
        }
        let mut cal = self.calibrator.clone();
        cal.mem = mem;
        let model = cal.calibrate(&mut *self.bus.lock());
        self.cache.lock().insert(MemTypeKey(mem), model);
        model
    }

    /// Predicted transfer time for `bytes` in `dir` with memory type `mem`.
    pub fn predict(&self, bytes: u64, dir: Direction, mem: MemType) -> f64 {
        self.model(mem).predict(bytes, dir)
    }

    /// Access the underlying bus (e.g. to take "real" measurements).
    pub fn bus(&self) -> parking_lot::MutexGuard<'_, B> {
        self.bus.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::BusParams;
    use crate::sim::BusSimulator;

    #[test]
    fn calibration_recovers_quiet_bus_parameters() {
        let mut bus = BusSimulator::new(BusParams::pcie_v1_x16().quiet(), 1);
        let m = Calibrator::default().calibrate(&mut bus);
        // α should be the small-transfer latency (~9.5/11 µs),
        // 1/β the effective bandwidth (~2.5 GB/s).
        assert!(
            (9.0e-6..10.5e-6).contains(&m.h2d.alpha),
            "alpha {}",
            m.h2d.alpha
        );
        assert!(
            (10.5e-6..12.0e-6).contains(&m.d2h.alpha),
            "alpha {}",
            m.d2h.alpha
        );
        assert!((2.3e9..2.7e9).contains(&m.h2d.bandwidth()));
    }

    #[test]
    fn calibration_on_noisy_bus_is_stable() {
        // Calibrating twice on the same (noisy) machine must give nearly
        // identical parameters — averaging ten runs does its job.
        let mut bus = BusSimulator::new(BusParams::pcie_v1_x16(), 99);
        let cal = Calibrator::default();
        let m1 = cal.calibrate(&mut bus);
        let m2 = cal.calibrate(&mut bus);
        let da = (m1.h2d.alpha - m2.h2d.alpha).abs() / m1.h2d.alpha;
        let db = (m1.h2d.beta - m2.h2d.beta).abs() / m1.h2d.beta;
        assert!(da < 0.15, "alpha drift {da}");
        assert!(db < 0.05, "beta drift {db}");
    }

    #[test]
    fn calibrated_bus_caches_model() {
        let bus = BusSimulator::new(BusParams::pcie_v1_x16().quiet(), 5);
        let cb = CalibratedBus::new(bus, Calibrator::default());
        let before = cb.bus().transfer_count();
        let m1 = cb.model(MemType::Pinned);
        let mid = cb.bus().transfer_count();
        let m2 = cb.model(MemType::Pinned);
        let after = cb.bus().transfer_count();
        assert_eq!(m1.h2d, m2.h2d);
        assert!(mid > before, "first call measures");
        assert_eq!(mid, after, "second call cached");
    }

    #[test]
    fn calibrated_bus_separates_mem_types() {
        let bus = BusSimulator::new(BusParams::pcie_v1_x16().quiet(), 5);
        let cb = CalibratedBus::new(bus, Calibrator::default());
        let pin = cb.model(MemType::Pinned);
        let page = cb.model(MemType::Pageable);
        // Pageable asymptotic bandwidth is lower.
        assert!(page.h2d.bandwidth() < pin.h2d.bandwidth());
    }

    #[test]
    fn predict_through_wrapper() {
        let bus = BusSimulator::new(BusParams::pcie_v1_x16().quiet(), 5);
        let cb = CalibratedBus::new(bus, Calibrator::default());
        let t = cb.predict(8 << 20, Direction::HostToDevice, MemType::Pinned);
        assert!((2.5e-3..4.5e-3).contains(&t), "t = {t}");
    }

    #[test]
    fn zero_runs_clamped_to_one() {
        let mut bus = BusSimulator::new(BusParams::pcie_v1_x16().quiet(), 1);
        let cal = Calibrator {
            runs: 0,
            ..Calibrator::default()
        };
        let m = cal.calibrate(&mut bus);
        assert!(m.h2d.alpha > 0.0);
    }
}
