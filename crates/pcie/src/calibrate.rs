//! The two-point calibration benchmark (§III-C).
//!
//! "To determine α, we measure the transfer time t_S of a single byte; we
//! then set α = t_S. To determine β, we measure the time t_L of a large
//! transfer of size s_L = 512 MB and then set β = t_L / s_L. Both t_S and
//! t_L are averaged across ten runs to reduce the impact of noise. These
//! two measurements are performed by a simple synthetic benchmark, which is
//! automatically invoked by GROPHECY++ when run on a new system."

use crate::model::{DirectionalModel, LinearModel};
use crate::params::{Direction, MemType};
use crate::Bus;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Configuration of the calibration benchmark. The defaults are the
/// paper's choices; the footnote notes 512 MB "is chosen rather
/// arbitrarily; any size larger than a few megabytes would be sufficient".
#[derive(Debug, Clone)]
pub struct Calibrator {
    /// Size of the small transfer measuring α.
    pub small_bytes: u64,
    /// Size of the large transfer measuring β.
    pub large_bytes: u64,
    /// Runs to average per measurement.
    pub runs: u32,
    /// Host memory type to calibrate for (the paper assumes pinned).
    pub mem: MemType,
}

impl Default for Calibrator {
    fn default() -> Self {
        Calibrator {
            small_bytes: 1,
            large_bytes: 512 << 20,
            runs: 10,
            mem: MemType::Pinned,
        }
    }
}

impl Calibrator {
    /// Runs the synthetic benchmark against a bus and derives per-direction
    /// linear models.
    pub fn calibrate(&self, bus: &mut dyn Bus) -> DirectionalModel {
        DirectionalModel {
            h2d: self.calibrate_direction(bus, Direction::HostToDevice),
            d2h: self.calibrate_direction(bus, Direction::DeviceToHost),
        }
    }

    /// Calibrates a single direction.
    pub fn calibrate_direction(&self, bus: &mut dyn Bus, dir: Direction) -> LinearModel {
        let t_small = self.mean_time(bus, self.small_bytes, dir);
        let t_large = self.mean_time(bus, self.large_bytes, dir);
        LinearModel::from_two_points(t_small, t_large, self.large_bytes)
    }

    fn mean_time(&self, bus: &mut dyn Bus, bytes: u64, dir: Direction) -> f64 {
        let runs = self.runs.max(1);
        let mut samples: Vec<f64> = (0..runs)
            .map(|_| bus.transfer(bytes, dir, self.mem))
            .collect();
        // The paper averages ten runs "to reduce the impact of noise"; we
        // additionally trim the extremes so a single OS preemption landing
        // on a microsecond-scale calibration transfer cannot poison α —
        // a robustness improvement over the plain mean, noted in
        // EXPERIMENTS.md.
        if samples.len() >= 3 {
            samples.sort_by(f64::total_cmp);
            samples.pop();
            samples.remove(0);
        }
        samples.iter().sum::<f64>() / samples.len() as f64
    }

    /// Fault-tolerant calibration: like [`Calibrator::calibrate`], but
    /// built for buses that can fail or lie (a [`crate::FaultyBus`], a
    /// contended real machine). Differences from the plain path:
    ///
    /// * each fit point is a **median of k** samples taken with
    ///   [`Bus::try_transfer`], retrying failed attempts under a bounded
    ///   budget;
    /// * the fitted line is **validated** against fresh probes at 64 KiB
    ///   (α-sensitive) and 8 MiB (β-sensitive); a probe deviating beyond a
    ///   relative residual threshold triggers a re-measure with a larger k;
    /// * after [`MAX_FIT_ATTEMPTS`] the structured [`CalibrationError`]
    ///   reports which direction failed and why.
    ///
    /// The plain path stays untouched so a run without faults remains
    /// bit-identical to earlier releases; callers switch to this method
    /// only when a fault plan is active (see `Grophecy::try_calibrate`).
    pub fn calibrate_checked(
        &self,
        bus: &mut dyn Bus,
    ) -> Result<DirectionalModel, CalibrationError> {
        Ok(DirectionalModel {
            h2d: self.calibrate_direction_checked(bus, Direction::HostToDevice)?,
            d2h: self.calibrate_direction_checked(bus, Direction::DeviceToHost)?,
        })
    }

    /// The fault-tolerant path for a single direction. See
    /// [`Calibrator::calibrate_checked`].
    pub fn calibrate_direction_checked(
        &self,
        bus: &mut dyn Bus,
        dir: Direction,
    ) -> Result<LinearModel, CalibrationError> {
        let fail = |attempts: u32, message: String| CalibrationError {
            direction: dir,
            attempts,
            message,
        };
        let mut k = self.runs.max(3);
        let mut last_reason = String::new();
        for attempt in 1..=MAX_FIT_ATTEMPTS {
            let t_small = self
                .robust_median(bus, self.small_bytes, dir, k)
                .map_err(|m| fail(attempt, m))?;
            let t_large = self
                .robust_median(bus, self.large_bytes, dir, k)
                .map_err(|m| fail(attempt, m))?;
            // A fit point corrupted badly enough to invert the ordering
            // would make LinearModel::new panic; treat it as a failed
            // attempt instead.
            if !(t_small.is_finite() && t_large.is_finite() && t_small > 0.0 && t_small < t_large) {
                last_reason = format!("degenerate fit points t_small={t_small} t_large={t_large}");
                k = k * 2 + 1;
                continue;
            }
            let model = LinearModel::from_two_points(t_small, t_large, self.large_bytes);
            match self.validate_fit(bus, dir, &model) {
                Ok(()) => return Ok(model),
                Err(reason) => {
                    last_reason = reason;
                    k = k * 2 + 1;
                }
            }
        }
        Err(fail(
            MAX_FIT_ATTEMPTS,
            format!("fit never validated: {last_reason}"),
        ))
    }

    /// Median of `k` successful samples, retrying injected transfer errors
    /// under a bounded budget (4 failures per wanted sample).
    fn robust_median(
        &self,
        bus: &mut dyn Bus,
        bytes: u64,
        dir: Direction,
        k: u32,
    ) -> Result<f64, String> {
        let mut samples: Vec<f64> = Vec::with_capacity(k as usize);
        let mut failures: u32 = 0;
        let budget = k * 4;
        while samples.len() < k as usize {
            match bus.try_transfer(bytes, dir, self.mem) {
                Ok(t) => samples.push(t),
                Err(e) => {
                    failures += 1;
                    if failures > budget {
                        return Err(format!(
                            "retry budget exhausted after {failures} failed transfers of \
                             {bytes} B: {e}"
                        ));
                    }
                }
            }
        }
        samples.sort_by(f64::total_cmp);
        let mid = samples.len() / 2;
        Ok(if samples.len() % 2 == 1 {
            samples[mid]
        } else {
            0.5 * (samples[mid - 1] + samples[mid])
        })
    }

    /// Probes the fitted line at an α-sensitive and a β-sensitive size and
    /// rejects it when a probe's relative residual exceeds its threshold.
    fn validate_fit(
        &self,
        bus: &mut dyn Bus,
        dir: Direction,
        model: &LinearModel,
    ) -> Result<(), String> {
        for (bytes, threshold) in VALIDATION_PROBES {
            let measured = self.robust_median(bus, bytes, dir, 5)?;
            let predicted = model.predict(bytes);
            let residual = (measured - predicted).abs() / measured.max(f64::MIN_POSITIVE);
            if residual > threshold {
                return Err(format!(
                    "probe at {bytes} B off the fitted line: measured {measured:.3e} s, \
                     predicted {predicted:.3e} s (relative residual {residual:.2} > {threshold})"
                ));
            }
        }
        Ok(())
    }
}

/// A reusable slab of probe timings for batched calibration.
///
/// [`Calibrator::calibrate`] allocates a fresh `Vec` per fit point (four
/// per directional model). On the serve hot path — where every new
/// machine triggers a calibration — that churn is avoidable: a
/// `ProbeBatch` owns one flat buffer laid out as four contiguous
/// segments (h2d-small, h2d-large, d2h-small, d2h-large, each
/// `runs` samples long) and is reused across calibrations, so steady
/// state performs zero allocations.
#[derive(Debug, Default)]
pub struct ProbeBatch {
    times: Vec<f64>,
    runs: usize,
}

impl ProbeBatch {
    /// An empty batch; the first calibration sizes the buffer.
    pub fn new() -> Self {
        ProbeBatch::default()
    }

    /// The raw samples of the most recent calibration, in draw order
    /// (four segments of `runs` samples each, sorted ascending within
    /// each segment by the reduction).
    pub fn samples(&self) -> &[f64] {
        &self.times
    }

    /// Runs per segment in the most recent calibration.
    pub fn runs(&self) -> usize {
        self.runs
    }

    /// Current buffer capacity (for asserting reuse in tests/benches).
    pub fn capacity(&self) -> usize {
        self.times.capacity()
    }

    /// Sorts one segment in place and reduces it with the same trimmed
    /// mean as [`Calibrator::calibrate`]: sort ascending, drop the max
    /// and the min when at least three samples exist, then sum the
    /// survivors in ascending order — the identical float expression,
    /// so the batched path is bit-for-bit the per-probe path.
    fn segment_mean(&mut self, seg: usize) -> f64 {
        let s = &mut self.times[seg * self.runs..(seg + 1) * self.runs];
        s.sort_by(f64::total_cmp);
        let kept = if s.len() >= 3 {
            &s[1..s.len() - 1]
        } else {
            &s[..]
        };
        kept.iter().sum::<f64>() / kept.len() as f64
    }
}

impl Calibrator {
    /// Batched calibration: draws every probe for both directions into
    /// one reusable slab, then reduces the four segments in a single
    /// pass. Sample draw order and the trimmed-mean reduction match
    /// [`Calibrator::calibrate`] exactly, so on the same bus state the
    /// result is bit-identical — this is purely an allocation-count
    /// optimization for hot calibration paths.
    pub fn calibrate_batched(&self, bus: &mut dyn Bus, batch: &mut ProbeBatch) -> DirectionalModel {
        let runs = self.runs.max(1) as usize;
        batch.runs = runs;
        batch.times.clear();
        let plan = [
            (self.small_bytes, Direction::HostToDevice),
            (self.large_bytes, Direction::HostToDevice),
            (self.small_bytes, Direction::DeviceToHost),
            (self.large_bytes, Direction::DeviceToHost),
        ];
        for (bytes, dir) in plan {
            for _ in 0..runs {
                batch.times.push(bus.transfer(bytes, dir, self.mem));
            }
        }
        let means = [
            batch.segment_mean(0),
            batch.segment_mean(1),
            batch.segment_mean(2),
            batch.segment_mean(3),
        ];
        DirectionalModel {
            h2d: LinearModel::from_two_points(means[0], means[1], self.large_bytes),
            d2h: LinearModel::from_two_points(means[2], means[3], self.large_bytes),
        }
    }

    /// Multi-size streaming fit for one direction: probes each size with
    /// the trimmed-mean reduction and folds every (size, time) point
    /// through a [`StreamingFit`], yielding the least-squares α/β line
    /// over the whole probe batch instead of the paper's two-point
    /// construction. Returns `None` when the probe set is degenerate
    /// (fewer than two distinct sizes).
    pub fn calibrate_fit(
        &self,
        bus: &mut dyn Bus,
        dir: Direction,
        sizes: &[u64],
        batch: &mut ProbeBatch,
    ) -> Option<LinearModel> {
        let runs = self.runs.max(1) as usize;
        batch.runs = runs;
        let mut fit = StreamingFit::new();
        for &bytes in sizes {
            batch.times.clear();
            for _ in 0..runs {
                batch.times.push(bus.transfer(bytes, dir, self.mem));
            }
            fit.push(bytes, batch.segment_mean(0));
        }
        fit.fit()
    }
}

/// One-pass least-squares accumulator for Equation 1.
///
/// Feeds on (size, seconds) probe points and keeps only the five running
/// sums (`n`, Σs, Σt, Σs², Σs·t) needed for the closed-form line fit —
/// O(1) memory regardless of batch size, so whole probe batches stream
/// through without per-probe allocation. The fitted parameters are
/// clamped non-negative (a noisy batch can place the intercept slightly
/// below zero; a negative α or β is physically meaningless and would
/// panic [`LinearModel::new`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StreamingFit {
    n: f64,
    sum_s: f64,
    sum_t: f64,
    sum_ss: f64,
    sum_st: f64,
}

impl StreamingFit {
    /// An empty accumulator.
    pub fn new() -> Self {
        StreamingFit::default()
    }

    /// Folds one probe point (transfer of `bytes` took `seconds`).
    pub fn push(&mut self, bytes: u64, seconds: f64) {
        let s = bytes as f64;
        self.n += 1.0;
        self.sum_s += s;
        self.sum_t += seconds;
        self.sum_ss += s * s;
        self.sum_st += s * seconds;
    }

    /// Folds a whole batch of probe points.
    pub fn push_batch<I: IntoIterator<Item = (u64, f64)>>(&mut self, points: I) {
        for (bytes, seconds) in points {
            self.push(bytes, seconds);
        }
    }

    /// Number of points accumulated so far.
    pub fn len(&self) -> usize {
        self.n as usize
    }

    /// True when no points have been accumulated.
    pub fn is_empty(&self) -> bool {
        self.n == 0.0
    }

    /// Closed-form least-squares solution over everything pushed so far.
    /// `None` until at least two points with distinct sizes exist (the
    /// denominator `n·Σs² − (Σs)²` vanishes otherwise).
    pub fn fit(&self) -> Option<LinearModel> {
        if self.n < 2.0 {
            return None;
        }
        let denom = self.n * self.sum_ss - self.sum_s * self.sum_s;
        if denom <= 0.0 || !denom.is_finite() {
            return None;
        }
        let beta = (self.n * self.sum_st - self.sum_s * self.sum_t) / denom;
        let alpha = (self.sum_t - beta * self.sum_s) / self.n;
        if !(alpha.is_finite() && beta.is_finite()) {
            return None;
        }
        Some(LinearModel::new(alpha.max(0.0), beta.max(0.0)))
    }
}

/// Fit/validate rounds before [`Calibrator::calibrate_checked`] gives up.
pub const MAX_FIT_ATTEMPTS: u32 = 3;

/// Validation probe sizes and their relative residual thresholds. 64 KiB
/// sits near the latency/bandwidth break-even (α-sensitive); 8 MiB is
/// firmly bandwidth-bound (β-sensitive). Thresholds are loose enough for
/// the linear model's known small-size error (the paper's Fig. 2 shows
/// the model is least accurate below ~1 MiB) but far tighter than the
/// ~20× distortion an undetected outlier inflicts on a fit point.
pub const VALIDATION_PROBES: [(u64, f64); 2] = [(64 << 10, 0.50), (8 << 20, 0.35)];

/// Calibration failed even after bounded retry and re-measurement —
/// either the transfer-error retry budget ran out or no fit ever passed
/// probe validation.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationError {
    /// The direction being calibrated when the budget ran out.
    pub direction: Direction,
    /// How many fit/validate rounds were spent.
    pub attempts: u32,
    /// What went wrong on the last round.
    pub message: String,
}

impl std::fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "calibration failed ({:?}, {} attempts): {}",
            self.direction, self.attempts, self.message
        )
    }
}

impl std::error::Error for CalibrationError {}

/// A bus wrapper that lazily calibrates on first use and caches the model —
/// mirroring GROPHECY++'s "automatically invoked when run on a new system"
/// behaviour. Thread-safe so concurrent projections share one calibration.
pub struct CalibratedBus<B: Bus> {
    bus: Mutex<B>,
    calibrator: Calibrator,
    cache: Mutex<HashMap<MemTypeKey, DirectionalModel>>,
}

#[derive(PartialEq, Eq, Hash, Clone, Copy)]
struct MemTypeKey(MemType);

impl<B: Bus> CalibratedBus<B> {
    /// Wraps a bus with a calibrator.
    pub fn new(bus: B, calibrator: Calibrator) -> Self {
        CalibratedBus {
            bus: Mutex::new(bus),
            calibrator,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// The calibrated model for a memory type, measuring it on first
    /// request.
    pub fn model(&self, mem: MemType) -> DirectionalModel {
        if let Some(m) = self.cache.lock().get(&MemTypeKey(mem)) {
            return *m;
        }
        let mut cal = self.calibrator.clone();
        cal.mem = mem;
        let model = cal.calibrate(&mut *self.bus.lock());
        self.cache.lock().insert(MemTypeKey(mem), model);
        model
    }

    /// Predicted transfer time for `bytes` in `dir` with memory type `mem`.
    pub fn predict(&self, bytes: u64, dir: Direction, mem: MemType) -> f64 {
        self.model(mem).predict(bytes, dir)
    }

    /// Access the underlying bus (e.g. to take "real" measurements).
    pub fn bus(&self) -> parking_lot::MutexGuard<'_, B> {
        self.bus.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::BusParams;
    use crate::sim::BusSimulator;

    #[test]
    fn calibration_recovers_quiet_bus_parameters() {
        let mut bus = BusSimulator::new(BusParams::pcie_v1_x16().quiet(), 1);
        let m = Calibrator::default().calibrate(&mut bus);
        // α should be the small-transfer latency (~9.5/11 µs),
        // 1/β the effective bandwidth (~2.5 GB/s).
        assert!(
            (9.0e-6..10.5e-6).contains(&m.h2d.alpha),
            "alpha {}",
            m.h2d.alpha
        );
        assert!(
            (10.5e-6..12.0e-6).contains(&m.d2h.alpha),
            "alpha {}",
            m.d2h.alpha
        );
        assert!((2.3e9..2.7e9).contains(&m.h2d.bandwidth()));
    }

    #[test]
    fn calibration_on_noisy_bus_is_stable() {
        // Calibrating twice on the same (noisy) machine must give nearly
        // identical parameters — averaging ten runs does its job.
        let mut bus = BusSimulator::new(BusParams::pcie_v1_x16(), 99);
        let cal = Calibrator::default();
        let m1 = cal.calibrate(&mut bus);
        let m2 = cal.calibrate(&mut bus);
        let da = (m1.h2d.alpha - m2.h2d.alpha).abs() / m1.h2d.alpha;
        let db = (m1.h2d.beta - m2.h2d.beta).abs() / m1.h2d.beta;
        assert!(da < 0.15, "alpha drift {da}");
        assert!(db < 0.05, "beta drift {db}");
    }

    #[test]
    fn calibrated_bus_caches_model() {
        let bus = BusSimulator::new(BusParams::pcie_v1_x16().quiet(), 5);
        let cb = CalibratedBus::new(bus, Calibrator::default());
        let before = cb.bus().transfer_count();
        let m1 = cb.model(MemType::Pinned);
        let mid = cb.bus().transfer_count();
        let m2 = cb.model(MemType::Pinned);
        let after = cb.bus().transfer_count();
        assert_eq!(m1.h2d, m2.h2d);
        assert!(mid > before, "first call measures");
        assert_eq!(mid, after, "second call cached");
    }

    #[test]
    fn calibrated_bus_separates_mem_types() {
        let bus = BusSimulator::new(BusParams::pcie_v1_x16().quiet(), 5);
        let cb = CalibratedBus::new(bus, Calibrator::default());
        let pin = cb.model(MemType::Pinned);
        let page = cb.model(MemType::Pageable);
        // Pageable asymptotic bandwidth is lower.
        assert!(page.h2d.bandwidth() < pin.h2d.bandwidth());
    }

    #[test]
    fn predict_through_wrapper() {
        let bus = BusSimulator::new(BusParams::pcie_v1_x16().quiet(), 5);
        let cb = CalibratedBus::new(bus, Calibrator::default());
        let t = cb.predict(8 << 20, Direction::HostToDevice, MemType::Pinned);
        assert!((2.5e-3..4.5e-3).contains(&t), "t = {t}");
    }

    #[test]
    fn checked_path_matches_plain_on_clean_bus() {
        let cal = Calibrator::default();
        let mut bus = BusSimulator::new(BusParams::pcie_v1_x16(), 31);
        let plain = cal.calibrate(&mut bus);
        let mut bus = BusSimulator::new(BusParams::pcie_v1_x16(), 31);
        let checked = cal.calibrate_checked(&mut bus).unwrap();
        let rel = |a: f64, b: f64| (a - b).abs() / a;
        assert!(rel(plain.h2d.alpha, checked.h2d.alpha) < 0.2);
        assert!(rel(plain.h2d.beta, checked.h2d.beta) < 0.05);
    }

    #[test]
    fn checked_path_survives_sporadic_outliers() {
        use crate::faulty::FaultyBus;
        use gpp_fault::{FaultInjector, FaultPlan};
        use std::sync::Arc;

        // 20% of all samples inflated 50×: the plain trimmed mean breaks
        // (expected ~2 outliers among 10 runs, only 1 trimmed), the
        // median-of-k checked path recovers the true line.
        let plan: FaultPlan = "seed=3;pcie.calibration.outlier:p=0.2,factor=50"
            .parse()
            .unwrap();
        let inner = BusSimulator::new(BusParams::pcie_v1_x16().quiet(), 8);
        let mut bus = FaultyBus::new(inner, Arc::new(FaultInjector::new(plan)));
        let m = Calibrator::default().calibrate_checked(&mut bus).unwrap();
        assert!(
            (9.0e-6..10.5e-6).contains(&m.h2d.alpha),
            "alpha {}",
            m.h2d.alpha
        );
        assert!((2.3e9..2.7e9).contains(&m.h2d.bandwidth()));
        assert!(bus.injector().total_fired() > 0, "plan never fired");
    }

    #[test]
    fn checked_path_retries_transfer_errors() {
        use crate::faulty::FaultyBus;
        use gpp_fault::{FaultInjector, FaultPlan};
        use std::sync::Arc;

        let plan: FaultPlan = "seed=5;pcie.transfer.error:p=0.3".parse().unwrap();
        let inner = BusSimulator::new(BusParams::pcie_v1_x16().quiet(), 8);
        let mut bus = FaultyBus::new(inner, Arc::new(FaultInjector::new(plan)));
        let m = Calibrator::default().calibrate_checked(&mut bus).unwrap();
        assert!((2.3e9..2.7e9).contains(&m.h2d.bandwidth()));
    }

    #[test]
    fn checked_path_reports_budget_exhaustion() {
        use crate::faulty::FaultyBus;
        use gpp_fault::{FaultInjector, FaultPlan};
        use std::sync::Arc;

        let plan: FaultPlan = "pcie.transfer.error:always".parse().unwrap();
        let inner = BusSimulator::new(BusParams::pcie_v1_x16().quiet(), 8);
        let mut bus = FaultyBus::new(inner, Arc::new(FaultInjector::new(plan)));
        let err = Calibrator::default()
            .calibrate_checked(&mut bus)
            .unwrap_err();
        assert_eq!(err.direction, Direction::HostToDevice);
        assert!(err.message.contains("retry budget"), "{}", err.message);
        let shown = err.to_string();
        assert!(shown.contains("calibration failed"), "{shown}");
    }

    #[test]
    fn batched_calibration_is_bit_identical_to_plain() {
        // Same seed, same draw order, same reduction: the batched slab
        // path must reproduce the per-probe path bit for bit, noisy bus
        // included.
        for seed in [1, 7, 99, 2013] {
            let cal = Calibrator::default();
            let mut plain_bus = BusSimulator::new(BusParams::pcie_v1_x16(), seed);
            let plain = cal.calibrate(&mut plain_bus);
            let mut batch_bus = BusSimulator::new(BusParams::pcie_v1_x16(), seed);
            let mut batch = ProbeBatch::new();
            let batched = cal.calibrate_batched(&mut batch_bus, &mut batch);
            assert_eq!(plain.h2d, batched.h2d, "seed {seed}");
            assert_eq!(plain.d2h, batched.d2h, "seed {seed}");
        }
    }

    #[test]
    fn probe_batch_buffer_is_reused_across_calibrations() {
        let mut bus = BusSimulator::new(BusParams::pcie_v1_x16(), 4);
        let cal = Calibrator::default();
        let mut batch = ProbeBatch::new();
        cal.calibrate_batched(&mut bus, &mut batch);
        assert_eq!(batch.samples().len(), 4 * cal.runs as usize);
        assert_eq!(batch.runs(), cal.runs as usize);
        let cap = batch.capacity();
        for _ in 0..5 {
            cal.calibrate_batched(&mut bus, &mut batch);
        }
        assert_eq!(batch.capacity(), cap, "steady state must not reallocate");
    }

    #[test]
    fn streaming_fit_batch_equals_sequential_pushes() {
        let points: Vec<(u64, f64)> = (0..20)
            .map(|i| (1u64 << i, 1e-5 + (1u64 << i) as f64 * 4e-10))
            .collect();
        let mut seq = StreamingFit::new();
        for &(s, t) in &points {
            seq.push(s, t);
        }
        let mut bat = StreamingFit::new();
        bat.push_batch(points.iter().copied());
        assert_eq!(seq, bat, "accumulators diverged");
        assert_eq!(seq.fit(), bat.fit());
        assert_eq!(seq.len(), 20);
        assert!(!seq.is_empty());
    }

    #[test]
    fn streaming_fit_recovers_known_line() {
        // Points drawn exactly from T(d) = 10 µs + d / 2.5 GB/s: the
        // least-squares solution must recover the generating line.
        let (alpha, beta) = (10e-6, 4e-10);
        let mut fit = StreamingFit::new();
        fit.push_batch((10..28).map(|i| {
            let s = 1u64 << i;
            (s, alpha + beta * s as f64)
        }));
        let m = fit.fit().expect("line fit");
        assert!((m.alpha - alpha).abs() / alpha < 1e-6, "alpha {}", m.alpha);
        assert!((m.beta - beta).abs() / beta < 1e-9, "beta {}", m.beta);
    }

    #[test]
    fn streaming_fit_degenerate_batches_yield_none() {
        let mut fit = StreamingFit::new();
        assert!(fit.is_empty());
        assert_eq!(fit.fit(), None, "empty");
        fit.push(1 << 20, 1e-3);
        assert_eq!(fit.fit(), None, "single point");
        fit.push(1 << 20, 2e-3); // same size again: vertical line
        assert_eq!(fit.fit(), None, "no size spread");
    }

    #[test]
    fn streaming_fit_clamps_negative_intercept() {
        // A descending artifact (large transfer "faster" than small)
        // drives the intercept negative; the fit clamps to a valid model
        // instead of panicking LinearModel::new.
        let mut fit = StreamingFit::new();
        fit.push_batch([(1, 5e-3), (1 << 10, 4e-3), (1 << 20, 1e-1)]);
        let m = fit.fit().expect("fit");
        assert!(m.alpha >= 0.0 && m.beta >= 0.0);
    }

    #[test]
    fn multi_size_fit_agrees_with_two_point_calibration() {
        let cal = Calibrator::default();
        let mut bus = BusSimulator::new(BusParams::pcie_v1_x16().quiet(), 1);
        let two_point = cal.calibrate(&mut bus);
        let mut bus = BusSimulator::new(BusParams::pcie_v1_x16().quiet(), 1);
        let mut batch = ProbeBatch::new();
        // Bandwidth-dominated sizes: the least-squares slope must agree
        // with the two-point β; the intercept is noisier (the linear
        // model is least accurate at small sizes — paper Fig. 2) so only
        // β gets a tight bound.
        let sizes: Vec<u64> = (20..=29).map(|i| 1u64 << i).collect();
        let fitted = cal
            .calibrate_fit(&mut bus, Direction::HostToDevice, &sizes, &mut batch)
            .expect("fit");
        let rel = (fitted.beta - two_point.h2d.beta).abs() / two_point.h2d.beta;
        assert!(
            rel < 0.05,
            "beta drift {rel}: {fitted} vs {}",
            two_point.h2d
        );
    }

    #[test]
    fn zero_runs_clamped_to_one() {
        let mut bus = BusSimulator::new(BusParams::pcie_v1_x16().quiet(), 1);
        let cal = Calibrator {
            runs: 0,
            ..Calibrator::default()
        };
        let m = cal.calibrate(&mut bus);
        assert!(m.h2d.alpha > 0.0);
    }
}
