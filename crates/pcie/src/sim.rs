//! The mechanistic bus simulator — our stand-in for physical PCIe hardware.
//!
//! The simulator computes transfer times from first principles (packet
//! framing, DMA setup, staging copies) rather than from the paper's linear
//! model, so calibrating the linear model against it and then validating
//! the fit is a genuine experiment: the linear model is an *approximation*
//! of a nonlinear, noisy mechanism, exactly as on real hardware. In
//! particular the simulator reproduces the qualitative features of the
//! paper's Figure 2/3:
//!
//! * a latency floor of ~10 µs for small pinned transfers,
//! * ~2.5 GB/s asymptotic pinned bandwidth on the v1 x16 preset,
//! * pageable transfers slower than pinned everywhere **except** small
//!   host→device transfers (< 2 KB), where the driver's immediate-write
//!   fast path wins,
//! * extra non-linearity for pageable transfers at intermediate sizes
//!   (staging-chunk granularity), and
//! * measurement noise with rare large outliers.

use crate::params::{BusParams, Direction, MemType};
use crate::Bus;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Simulated PCIe bus + DMA engine. See module docs.
///
/// All timing is deterministic given the seed; the RNG advances once per
/// transfer, so replaying the same sequence of transfers reproduces the
/// same timings ("same machine, same day").
#[derive(Debug, Clone)]
pub struct BusSimulator {
    params: BusParams,
    rng: StdRng,
    transfers: u64,
    bytes_moved: u64,
}

impl BusSimulator {
    /// Creates a simulator with the given parameters and noise seed.
    pub fn new(params: BusParams, seed: u64) -> Self {
        BusSimulator {
            params,
            rng: StdRng::seed_from_u64(seed),
            transfers: 0,
            bytes_moved: 0,
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> &BusParams {
        &self.params
    }

    /// Number of transfers performed so far.
    pub fn transfer_count(&self) -> u64 {
        self.transfers
    }

    /// Total bytes moved so far.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// The noise-free transfer time: the deterministic mechanism only.
    /// Exposed for tests and for the "infinite averaging" limit.
    pub fn ideal_time(&self, bytes: u64, dir: Direction, mem: MemType) -> f64 {
        let p = &self.params;
        let bytes = bytes.max(1);
        match mem {
            MemType::Pinned => self.dma_time(bytes, dir),
            MemType::Pageable => {
                if dir == Direction::HostToDevice && bytes <= p.pageable_fastpath_bytes {
                    // Immediate write into the command buffer: no DMA setup,
                    // but the copy itself runs at host-write speed.
                    return p.pageable_fastpath_latency + bytes as f64 / p.host_copy_bw;
                }
                // Staged through pinned bounce buffers, chunk by chunk.
                let chunks = bytes.div_ceil(p.staging_chunk).max(1);
                let copy_time = bytes as f64 / p.host_copy_bw + chunks as f64 * p.staging_overhead;
                let dma_time = self.dma_time(bytes, dir);
                // The driver double-buffers: part of the copy hides under
                // the DMA of the previous chunk.
                let exposed = (1.0 - p.staging_overlap) * copy_time.min(dma_time);
                copy_time.max(dma_time) + exposed
            }
        }
    }

    /// Pinned-path DMA time: setup latency + packetized wire time.
    fn dma_time(&self, bytes: u64, dir: Direction) -> f64 {
        let p = &self.params;
        let setup = match dir {
            Direction::HostToDevice => p.dma_setup_h2d,
            Direction::DeviceToHost => p.dma_setup_d2h,
        };
        let packets = bytes.div_ceil(p.max_payload as u64);
        let wire_bytes = bytes + packets * p.tlp_overhead as u64;
        setup + wire_bytes as f64 / (p.raw_link_bw() * p.link_efficiency)
    }

    /// Draws the multiplicative + additive noise for one transfer.
    fn noise(&mut self, ideal: f64) -> f64 {
        let p_hiccup = self.params.hiccup_prob;
        let rel = self.params.noise_rel_sigma;
        let abs = self.params.noise_abs_sigma;
        // Box-Muller normal from two uniforms (avoids a rand_distr dep).
        let u1: f64 = self.rng.gen_range(1e-12..1.0);
        let u2: f64 = self.rng.gen_range(0.0..std::f64::consts::TAU);
        let z = (-2.0 * u1.ln()).sqrt() * u2.cos();
        let z2 = (-2.0 * u1.ln()).sqrt() * u2.sin();
        let mut t = ideal * (1.0 + rel * z) + (abs * z2).abs();
        // An OS preemption / interrupt storm: an *additive* stall of a few
        // scheduler quanta. The chance of being preempted scales with how
        // long the transfer is exposed, so microsecond-scale calibration
        // transfers are effectively immune, millisecond-scale application
        // transfers occasionally double (the paper's CFD outlier, §V-A),
        // and a 512 MB calibration run barely moves.
        let p = (p_hiccup * (ideal / 0.5e-3).clamp(0.02, 2.0)).min(1.0);
        if p > 0.0 && self.rng.gen_bool(p) {
            t += self.rng.gen_range(0.8e-3..3.0e-3);
        }
        t.max(ideal * 0.5)
    }
}

impl Bus for BusSimulator {
    fn transfer(&mut self, bytes: u64, dir: Direction, mem: MemType) -> f64 {
        let ideal = self.ideal_time(bytes, dir, mem);
        self.transfers += 1;
        self.bytes_moved += bytes;
        self.noise(ideal)
    }

    fn describe(&self) -> String {
        format!(
            "simulated PCIe {:?} x{} ({:.2} GB/s effective pinned)",
            self.params.gen,
            self.params.lanes,
            self.params.effective_pinned_bw() / 1e9
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_bus() -> BusSimulator {
        BusSimulator::new(BusParams::pcie_v1_x16().quiet(), 1)
    }

    #[test]
    fn small_pinned_transfer_hits_latency_floor() {
        let bus = quiet_bus();
        let t = bus.ideal_time(1, Direction::HostToDevice, MemType::Pinned);
        // ~9.5 µs setup + negligible wire time.
        assert!((9.0e-6..11.0e-6).contains(&t), "t = {t}");
    }

    #[test]
    fn large_pinned_transfer_hits_asymptotic_bandwidth() {
        let bus = quiet_bus();
        let bytes = 512u64 << 20;
        let t = bus.ideal_time(bytes, Direction::HostToDevice, MemType::Pinned);
        let bw = bytes as f64 / t;
        assert!((2.3e9..2.7e9).contains(&bw), "bw = {bw}");
    }

    #[test]
    fn d2h_is_slower_than_h2d_at_small_sizes() {
        let bus = quiet_bus();
        let h = bus.ideal_time(1, Direction::HostToDevice, MemType::Pinned);
        let d = bus.ideal_time(1, Direction::DeviceToHost, MemType::Pinned);
        assert!(d > h);
    }

    #[test]
    fn pageable_slower_than_pinned_at_large_sizes() {
        let bus = quiet_bus();
        for dir in Direction::ALL {
            let pin = bus.ideal_time(64 << 20, dir, MemType::Pinned);
            let page = bus.ideal_time(64 << 20, dir, MemType::Pageable);
            assert!(page > pin * 1.2, "{dir}: pinned {pin}, pageable {page}");
        }
    }

    #[test]
    fn small_pageable_h2d_beats_pinned() {
        // Paper Fig. 3: for CPU→GPU transfers < 2 KB, pageable wins.
        let bus = quiet_bus();
        let pin = bus.ideal_time(1024, Direction::HostToDevice, MemType::Pinned);
        let page = bus.ideal_time(1024, Direction::HostToDevice, MemType::Pageable);
        assert!(page < pin, "pinned {pin}, pageable {page}");
        // ... but not for GPU→CPU.
        let pin = bus.ideal_time(1024, Direction::DeviceToHost, MemType::Pinned);
        let page = bus.ideal_time(1024, Direction::DeviceToHost, MemType::Pageable);
        assert!(page > pin);
    }

    #[test]
    fn time_is_monotone_in_size() {
        let bus = quiet_bus();
        for mem in MemType::ALL {
            for dir in Direction::ALL {
                let mut prev = 0.0;
                for p in 0..29 {
                    let t = bus.ideal_time(1u64 << p, dir, mem);
                    assert!(t >= prev, "{mem} {dir} at 2^{p}: {t} < {prev}");
                    prev = t;
                }
            }
        }
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let mut a = BusSimulator::new(BusParams::pcie_v1_x16(), 7);
        let mut b = BusSimulator::new(BusParams::pcie_v1_x16(), 7);
        for p in [0u64, 10, 20, 28] {
            let ta = a.transfer(1 << p, Direction::HostToDevice, MemType::Pinned);
            let tb = b.transfer(1 << p, Direction::HostToDevice, MemType::Pinned);
            assert_eq!(ta, tb);
        }
        let mut c = BusSimulator::new(BusParams::pcie_v1_x16(), 8);
        let tc = c.transfer(1 << 20, Direction::HostToDevice, MemType::Pinned);
        let ta = a.transfer(1 << 20, Direction::HostToDevice, MemType::Pinned);
        assert_ne!(ta, tc);
    }

    #[test]
    fn noisy_times_track_ideal_times() {
        let mut bus = BusSimulator::new(BusParams::pcie_v1_x16(), 3);
        let ideal = bus.ideal_time(16 << 20, Direction::HostToDevice, MemType::Pinned);
        let mut sum = 0.0;
        let n = 50;
        for _ in 0..n {
            sum += bus.transfer(16 << 20, Direction::HostToDevice, MemType::Pinned);
        }
        let mean = sum / n as f64;
        assert!(
            (mean / ideal - 1.0).abs() < 0.08,
            "mean {mean} vs ideal {ideal}"
        );
    }

    #[test]
    fn counters_accumulate() {
        let mut bus = quiet_bus();
        bus.transfer(100, Direction::HostToDevice, MemType::Pinned);
        bus.transfer(200, Direction::DeviceToHost, MemType::Pageable);
        assert_eq!(bus.transfer_count(), 2);
        assert_eq!(bus.bytes_moved(), 300);
    }

    #[test]
    fn zero_byte_transfer_counts_as_one_byte() {
        let bus = quiet_bus();
        let t0 = bus.ideal_time(0, Direction::HostToDevice, MemType::Pinned);
        let t1 = bus.ideal_time(1, Direction::HostToDevice, MemType::Pinned);
        assert_eq!(t0, t1);
    }

    #[test]
    fn describe_mentions_generation() {
        let bus = quiet_bus();
        assert!(bus.describe().contains("V1"));
    }
}
