//! Chunked double-buffered transfers: the cost model behind `stream` /
//! `chunks=K` skeleton annotations.
//!
//! The paper prices every transfer as one synchronous `cudaMemcpy`
//! (Equation 1, `T(d) = α + β·d`). Real offload code splits large copies
//! into K pinned chunks on an async stream and overlaps chunk `i+1`'s DMA
//! with the kernel consuming chunk `i`. This module extends Equation 1 to
//! that regime with two pieces:
//!
//! * a **per-chunk cost**: each of the K chunks pays the full fixed
//!   latency `α` plus a pinned-staging latency `σ` (double-buffer
//!   rotation: event record/wait and the driver's staging queue), so a
//!   chunked copy executed serially costs *more* than an unchunked one —
//!   `K·(α + σ) + β·d` versus `α + β·d`;
//! * a **pipeline law**: when the chunked copy overlaps a kernel that
//!   consumes it chunk by chunk, the window costs
//!   `fill + (K-1)·max(tx, tc) + drain` where `tx`/`tc` are the per-chunk
//!   transfer/compute times — the classic double-buffer formula. For
//!   K ≥ 2 (and both sides positive) this is **strictly between**
//!   `max(T_x, T_c)` and `T_x + T_c`: overlap hides the smaller side but
//!   the fill and drain chunks are never hidden.

use crate::model::LinearModel;
use crate::params::BusParams;

/// Default pinned-staging latency when a bus has no mechanistic
/// parameters to derive one from (replay-trace machines): the per-chunk
/// double-buffer rotation cost, of the same order as a DMA setup.
pub const DEFAULT_STAGING_LATENCY: f64 = 6.0e-6;

/// Chunked double-buffered extension of a fitted [`LinearModel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkedModel {
    /// The fitted per-copy linear cost (Equation 1).
    pub link: LinearModel,
    /// Per-chunk pinned-staging latency `σ`, seconds.
    pub staging_latency: f64,
}

impl ChunkedModel {
    /// Wraps a fitted model with an explicit staging latency.
    pub fn new(link: LinearModel, staging_latency: f64) -> Self {
        ChunkedModel {
            link,
            staging_latency,
        }
    }

    /// Derives the staging latency from a mechanistic parameter set: the
    /// driver's per-staging-buffer overhead, discounted by the fraction it
    /// overlaps with the previous chunk's DMA.
    pub fn from_params(link: LinearModel, params: &BusParams) -> Self {
        ChunkedModel {
            link,
            staging_latency: params.staging_overhead * (1.0 - params.staging_overlap),
        }
    }

    /// Cost of one of `chunks` equal chunks of a `bytes`-sized copy:
    /// `α + σ + β·(bytes/chunks)`.
    pub fn chunk_time(&self, bytes: u64, chunks: u32) -> f64 {
        let chunks = chunks.max(1);
        let per_chunk = bytes as f64 / chunks as f64;
        self.link.alpha + self.staging_latency + self.link.beta * per_chunk
    }

    /// Total time of the chunked copy executed serially (no overlap):
    /// `K · (α + σ) + β·bytes`. With `chunks == 1` and `σ` folded out this
    /// degenerates to Equation 1 plus one staging rotation.
    pub fn serial_time(&self, bytes: u64, chunks: u32) -> f64 {
        let chunks = chunks.max(1);
        chunks as f64 * self.chunk_time(bytes, chunks)
    }

    /// Time of the overlap window when this chunked copy is double-
    /// buffered against `compute` seconds of kernel work consuming it
    /// chunk by chunk (see [`pipelined_window`]).
    pub fn overlapped_time(&self, bytes: u64, chunks: u32, compute: f64) -> f64 {
        pipelined_window(self.serial_time(bytes, chunks), compute, chunks)
    }
}

/// The double-buffer pipeline law over aggregate times: a transfer
/// totalling `transfer` seconds split into `chunks` equal chunks,
/// overlapped with `compute` seconds of kernel work consumed chunk by
/// chunk. Returns `fill + (K-1)·max(tx, tc) + drain`.
///
/// `chunks <= 1` (or a zero side) means no pipelining is possible: the
/// window is the serial sum — matching the paper's strictly-serial
/// schedule.
pub fn pipelined_window(transfer: f64, compute: f64, chunks: u32) -> f64 {
    if chunks <= 1 || transfer <= 0.0 || compute <= 0.0 {
        return transfer + compute;
    }
    let k = chunks as f64;
    let tx = transfer / k;
    let tc = compute / k;
    tx + (k - 1.0) * tx.max(tc) + tc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ChunkedModel {
        // α = 10 µs, 2.5 GB/s, σ = 3 µs — the paper's testbed scale.
        ChunkedModel::new(LinearModel::new(10.0e-6, 4.0e-10), 3.0e-6)
    }

    #[test]
    fn chunking_a_serial_copy_costs_more() {
        let m = model();
        let bytes = 64 << 20;
        let unchunked = m.serial_time(bytes, 1);
        let chunked = m.serial_time(bytes, 8);
        assert!(chunked > unchunked, "{chunked} vs {unchunked}");
        // The β·d term is identical; the gap is exactly 7 extra (α + σ).
        let gap = chunked - unchunked;
        assert!((gap - 7.0 * (10.0e-6 + 3.0e-6)).abs() < 1e-12, "{gap}");
    }

    #[test]
    fn overlapped_window_is_strictly_between_max_and_sum() {
        let m = model();
        let bytes = 64 << 20;
        for chunks in [2u32, 4, 8, 32] {
            for compute in [1.0e-3, 26.8e-3, 200.0e-3] {
                let transfer = m.serial_time(bytes, chunks);
                let overlapped = m.overlapped_time(bytes, chunks, compute);
                let lo = transfer.max(compute);
                let hi = transfer + compute;
                assert!(
                    overlapped > lo && overlapped < hi,
                    "chunks={chunks} compute={compute}: {overlapped} not in ({lo}, {hi})"
                );
            }
        }
    }

    #[test]
    fn more_chunks_hide_more_of_the_smaller_side() {
        let m = model();
        let bytes = 64 << 20;
        let compute = 30.0e-3; // comparable to the ~27 ms transfer
        let w2 = m.overlapped_time(bytes, 2, compute);
        let w8 = m.overlapped_time(bytes, 8, compute);
        // Finer chunking shrinks fill+drain; per-chunk α/σ overhead grows
        // the bus side, but at this scale the pipeline win dominates.
        assert!(w8 < w2, "{w8} vs {w2}");
    }

    #[test]
    fn unchunked_or_degenerate_windows_serialize() {
        assert_eq!(pipelined_window(2.0, 3.0, 1), 5.0);
        assert_eq!(pipelined_window(0.0, 3.0, 4), 3.0);
        assert_eq!(pipelined_window(2.0, 0.0, 4), 2.0);
    }

    #[test]
    fn pipeline_window_exact_value() {
        // transfer 8s over 4 chunks (tx=2), compute 4s (tc=1):
        // 2 + 3·max(2,1) + 1 = 9.
        assert!((pipelined_window(8.0, 4.0, 4) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn from_params_discounts_overlapped_staging() {
        let p = BusParams::pcie_v1_x16();
        let m = ChunkedModel::from_params(LinearModel::new(1e-5, 4e-10), &p);
        let expected = p.staging_overhead * (1.0 - p.staging_overlap);
        assert!((m.staging_latency - expected).abs() < 1e-18);
        assert!(m.staging_latency > 0.0 && m.staging_latency < p.staging_overhead);
    }
}
