//! Bus parameterization: link generations, memory types, directions.

/// Transfer direction across the bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// CPU (host) memory → GPU (device) memory.
    HostToDevice,
    /// GPU (device) memory → CPU (host) memory.
    DeviceToHost,
}

impl Direction {
    /// Both directions, in the order the paper reports them.
    pub const ALL: [Direction; 2] = [Direction::HostToDevice, Direction::DeviceToHost];
}

impl std::fmt::Display for Direction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Direction::HostToDevice => write!(f, "CPU-to-GPU"),
            Direction::DeviceToHost => write!(f, "GPU-to-CPU"),
        }
    }
}

/// Host memory type the transfer originates from / lands in (§III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemType {
    /// Page-locked memory (`cudaHostAlloc`): the DMA engine reads/writes it
    /// directly at full bus bandwidth.
    Pinned,
    /// Ordinary pageable memory (`malloc`): the driver stages the transfer
    /// through internal pinned bounce buffers, chunk by chunk.
    Pageable,
}

impl MemType {
    /// Both types, pinned first.
    pub const ALL: [MemType; 2] = [MemType::Pinned, MemType::Pageable];
}

impl std::fmt::Display for MemType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemType::Pinned => write!(f, "pinned"),
            MemType::Pageable => write!(f, "pageable"),
        }
    }
}

/// PCI Express generation (per-lane raw signalling rate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PcieGen {
    /// 2.5 GT/s per lane, 8b/10b encoding → 250 MB/s per lane.
    V1,
    /// 5 GT/s per lane, 8b/10b encoding → 500 MB/s per lane.
    V2,
    /// 8 GT/s per lane, 128b/130b encoding → ~985 MB/s per lane.
    V3,
}

impl PcieGen {
    /// Usable data rate per lane in bytes/second (after line encoding).
    pub fn lane_bytes_per_sec(self) -> f64 {
        match self {
            PcieGen::V1 => 250.0e6,
            PcieGen::V2 => 500.0e6,
            PcieGen::V3 => 984.6e6,
        }
    }
}

/// Full mechanistic parameter set of the simulated bus.
///
/// Defaults ([`BusParams::pcie_v1_x16`]) are tuned to the paper's testbed —
/// a Quadro FX 5600 in a PCIe v1 x16 slot — whose measured characteristics
/// are given in §III-C: α on the order of 10 µs and ~2.5 GB/s pinned
/// bandwidth.
#[derive(Debug, Clone, PartialEq)]
pub struct BusParams {
    /// Link generation.
    pub gen: PcieGen,
    /// Number of lanes (x16 for GPU slots).
    pub lanes: u32,
    /// Max TLP payload in bytes (128 B is typical for gen-1 chipsets).
    pub max_payload: u32,
    /// Per-TLP framing + header + DLLP/ACK overhead in byte-times.
    pub tlp_overhead: u32,
    /// Fraction of theoretical packet throughput actually achieved
    /// (flow-control stalls, replay, root-complex inefficiency).
    pub link_efficiency: f64,
    /// Fixed host-side DMA setup latency, seconds (driver call, doorbell,
    /// descriptor fetch) for host→device.
    pub dma_setup_h2d: f64,
    /// Same for device→host (readbacks are slightly slower: completion
    /// credits & posted-write draining).
    pub dma_setup_d2h: f64,
    /// Host memcpy bandwidth for pageable staging copies, bytes/sec.
    pub host_copy_bw: f64,
    /// Size of the driver's pinned staging chunks for pageable transfers.
    pub staging_chunk: u64,
    /// Per-chunk overhead for pageable transfers, seconds (page-table walk
    /// and queueing per staging buffer).
    pub staging_overhead: f64,
    /// Fraction of staging copy time overlapped with DMA of the previous
    /// chunk (driver double-buffers).
    pub staging_overlap: f64,
    /// Threshold below which small pageable host→device transfers take the
    /// driver's immediate-write fast path (copied inline into the command
    /// buffer, skipping DMA setup). This reproduces the paper's observation
    /// (Fig. 3) that pageable beats pinned for H2D transfers < 2 KB.
    pub pageable_fastpath_bytes: u64,
    /// Latency of the fast path, seconds.
    pub pageable_fastpath_latency: f64,
    /// Relative (multiplicative) noise sigma on each transfer.
    pub noise_rel_sigma: f64,
    /// Absolute jitter sigma in seconds (dominates small transfers).
    pub noise_abs_sigma: f64,
    /// Probability of an OS hiccup making a transfer 2–3× slower — the
    /// paper's "inexplicably high variability" outliers (§V-A, Fig. 5).
    pub hiccup_prob: f64,
}

impl BusParams {
    /// The paper's testbed: PCIe v1 x16 slot feeding a Quadro FX 5600.
    ///
    /// Large-transfer pinned bandwidth works out to ≈ 2.5 GB/s and the
    /// one-byte latency to ≈ 10 µs, matching §III-C.
    pub fn pcie_v1_x16() -> Self {
        BusParams {
            gen: PcieGen::V1,
            lanes: 16,
            max_payload: 128,
            tlp_overhead: 24,
            link_efficiency: 0.74,
            dma_setup_h2d: 9.5e-6,
            dma_setup_d2h: 11.0e-6,
            host_copy_bw: 3.2e9,
            staging_chunk: 64 << 10,
            staging_overhead: 6.0e-6,
            staging_overlap: 0.55,
            pageable_fastpath_bytes: 2 << 10,
            pageable_fastpath_latency: 6.5e-6,
            noise_rel_sigma: 0.012,
            noise_abs_sigma: 0.35e-6,
            hiccup_prob: 0.004,
        }
    }

    /// A PCIe v2 x16 system (~6 GB/s effective), for cross-system tests.
    pub fn pcie_v2_x16() -> Self {
        BusParams {
            gen: PcieGen::V2,
            lanes: 16,
            max_payload: 256,
            tlp_overhead: 24,
            link_efficiency: 0.82,
            dma_setup_h2d: 7.0e-6,
            dma_setup_d2h: 8.0e-6,
            host_copy_bw: 6.0e9,
            ..Self::pcie_v1_x16()
        }
    }

    /// A PCIe v3 x16 system (~12 GB/s effective), for cross-system tests.
    pub fn pcie_v3_x16() -> Self {
        BusParams {
            gen: PcieGen::V3,
            lanes: 16,
            max_payload: 256,
            tlp_overhead: 26,
            link_efficiency: 0.85,
            dma_setup_h2d: 5.0e-6,
            dma_setup_d2h: 6.0e-6,
            host_copy_bw: 10.0e9,
            ..Self::pcie_v1_x16()
        }
    }

    /// An idealized noise-free copy of these parameters (for exactness
    /// tests: the linear model should fit a quiet bus almost perfectly).
    pub fn quiet(mut self) -> Self {
        self.noise_rel_sigma = 0.0;
        self.noise_abs_sigma = 0.0;
        self.hiccup_prob = 0.0;
        self
    }

    /// Raw link bandwidth in bytes/second (lanes × per-lane rate).
    pub fn raw_link_bw(&self) -> f64 {
        self.lanes as f64 * self.gen.lane_bytes_per_sec()
    }

    /// Effective large-transfer pinned bandwidth in bytes/second after
    /// packet framing and link efficiency.
    pub fn effective_pinned_bw(&self) -> f64 {
        let payload_frac = self.max_payload as f64 / (self.max_payload + self.tlp_overhead) as f64;
        self.raw_link_bw() * payload_frac * self.link_efficiency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v1_x16_effective_bandwidth_matches_paper() {
        let p = BusParams::pcie_v1_x16();
        assert_eq!(p.raw_link_bw(), 4.0e9);
        let bw = p.effective_pinned_bw();
        // §III-C: "approximately 2.5 GB/s".
        assert!((2.3e9..2.7e9).contains(&bw), "effective bw = {bw}");
    }

    #[test]
    fn generations_are_ordered() {
        assert!(PcieGen::V1.lane_bytes_per_sec() < PcieGen::V2.lane_bytes_per_sec());
        assert!(PcieGen::V2.lane_bytes_per_sec() < PcieGen::V3.lane_bytes_per_sec());
    }

    #[test]
    fn v2_and_v3_are_faster() {
        let v1 = BusParams::pcie_v1_x16().effective_pinned_bw();
        let v2 = BusParams::pcie_v2_x16().effective_pinned_bw();
        let v3 = BusParams::pcie_v3_x16().effective_pinned_bw();
        assert!(v1 < v2 && v2 < v3);
        // §II-B quotes ~3 / 6 / 12 GB/s effective for v1/v2/v3.
        assert!((5.0e9..8.0e9).contains(&v2), "v2 bw = {v2}");
        assert!((10.0e9..14.0e9).contains(&v3), "v3 bw = {v3}");
    }

    #[test]
    fn quiet_removes_noise() {
        let p = BusParams::pcie_v1_x16().quiet();
        assert_eq!(p.noise_rel_sigma, 0.0);
        assert_eq!(p.noise_abs_sigma, 0.0);
        assert_eq!(p.hiccup_prob, 0.0);
    }

    #[test]
    fn display_strings() {
        assert_eq!(Direction::HostToDevice.to_string(), "CPU-to-GPU");
        assert_eq!(Direction::DeviceToHost.to_string(), "GPU-to-CPU");
        assert_eq!(MemType::Pinned.to_string(), "pinned");
        assert_eq!(MemType::Pageable.to_string(), "pageable");
    }
}
