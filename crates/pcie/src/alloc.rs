//! Memory-allocation overhead modeling — the paper's future work (§VII),
//! implemented here as an optional projection term.
//!
//! "In addition, we plan to ... account for the overhead of memory
//! allocation." Device allocations (`cudaMalloc`) cost a driver round-trip
//! plus page-table setup proportional to size; pinned host allocations
//! (`cudaHostAlloc`) are far more expensive because every page must be
//! locked and its physical address registered with the device.

/// Linear allocation-cost models for the three allocation kinds involved
/// in offloading a kernel.
#[derive(Debug, Clone, Copy)]
pub struct AllocModel {
    /// Fixed cost of a device allocation, seconds.
    pub device_alpha: f64,
    /// Marginal cost per device byte, seconds.
    pub device_beta: f64,
    /// Fixed cost of a pinned host allocation, seconds.
    pub pinned_alpha: f64,
    /// Marginal cost per pinned byte (page locking), seconds.
    pub pinned_beta: f64,
    /// Fixed cost of a pageable host allocation (malloc), seconds.
    pub pageable_alpha: f64,
    /// Marginal cost per pageable byte (lazy, nearly free), seconds.
    pub pageable_beta: f64,
}

impl AllocModel {
    /// Typical values for a CUDA 2.x era driver stack.
    pub fn cuda2_era() -> Self {
        AllocModel {
            device_alpha: 90e-6,
            device_beta: 1.0 / 80e9,
            pinned_alpha: 220e-6,
            pinned_beta: 1.0 / 3.5e9, // page-locking walks every page
            pageable_alpha: 2e-6,
            pageable_beta: 1.0 / 500e9,
        }
    }

    /// Cost of allocating `bytes` on the device.
    pub fn device(&self, bytes: u64) -> f64 {
        self.device_alpha + self.device_beta * bytes as f64
    }

    /// Cost of allocating `bytes` of host memory of the given type.
    pub fn host(&self, bytes: u64, mem: crate::MemType) -> f64 {
        match mem {
            crate::MemType::Pinned => self.pinned_alpha + self.pinned_beta * bytes as f64,
            crate::MemType::Pageable => self.pageable_alpha + self.pageable_beta * bytes as f64,
        }
    }

    /// Total one-time allocation overhead for offloading a working set:
    /// device buffers for everything, plus host-side staging of the given
    /// type for the transferred bytes.
    pub fn offload_setup(&self, device_bytes: u64, host_bytes: u64, mem: crate::MemType) -> f64 {
        self.device(device_bytes) + self.host(host_bytes, mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemType;

    #[test]
    fn pinned_alloc_costs_more_than_pageable() {
        let m = AllocModel::cuda2_era();
        for bytes in [4u64 << 10, 1 << 20, 64 << 20] {
            assert!(m.host(bytes, MemType::Pinned) > m.host(bytes, MemType::Pageable));
        }
    }

    #[test]
    fn pinned_alloc_scales_with_size() {
        let m = AllocModel::cuda2_era();
        let small = m.host(1 << 20, MemType::Pinned);
        let large = m.host(64 << 20, MemType::Pinned);
        assert!(large > small * 10.0);
    }

    #[test]
    fn device_alloc_is_cheap_relative_to_pinning() {
        let m = AllocModel::cuda2_era();
        assert!(m.device(64 << 20) < m.host(64 << 20, MemType::Pinned));
    }

    #[test]
    fn offload_setup_sums_components() {
        let m = AllocModel::cuda2_era();
        let sum = m.offload_setup(1 << 20, 1 << 20, MemType::Pinned);
        assert!((sum - (m.device(1 << 20) + m.host(1 << 20, MemType::Pinned))).abs() < 1e-15);
    }
}
