//! A pluggable bus backend: one concrete type that can stand behind a
//! simulated node's PCIe link.
//!
//! `SimulatedNode` historically hard-wired [`BusSimulator`]; replay-driven
//! machines (calibrating against a recorded trace from hardware we cannot
//! run code on) need a [`RecordedBus`] in the same slot. [`BusBackend`] is
//! the enum that unifies them: it implements [`Bus`] by delegation, so every
//! consumer written against the trait — the calibrator, the sweep
//! validators, the fault-injecting [`crate::FaultyBus`] wrapper — works with
//! either backend unchanged.

use crate::params::{Direction, MemType};
use crate::replay::RecordedBus;
use crate::sim::BusSimulator;
use crate::{Bus, TransferError};

/// The concrete bus standing behind a simulated node.
///
/// Wrapping (e.g. fault injection) stays orthogonal: `FaultyBus` borrows a
/// `&mut BusBackend` through the blanket `&mut B: Bus` impl, so no variant
/// is needed for it here.
#[derive(Debug, Clone)]
pub enum BusBackend {
    /// The mechanistic PCIe simulator (seeded noise, hiccups, staging).
    Sim(BusSimulator),
    /// A recorded trace replayed deterministically.
    Replay(RecordedBus),
}

impl BusBackend {
    /// Short tag for reports and cache keys: `sim` or `replay`.
    pub fn kind(&self) -> &'static str {
        match self {
            BusBackend::Sim(_) => "sim",
            BusBackend::Replay(_) => "replay",
        }
    }
}

impl Bus for BusBackend {
    fn transfer(&mut self, bytes: u64, dir: Direction, mem: MemType) -> f64 {
        match self {
            BusBackend::Sim(b) => b.transfer(bytes, dir, mem),
            BusBackend::Replay(b) => b.transfer(bytes, dir, mem),
        }
    }

    fn try_transfer(
        &mut self,
        bytes: u64,
        dir: Direction,
        mem: MemType,
    ) -> Result<f64, TransferError> {
        match self {
            BusBackend::Sim(b) => b.try_transfer(bytes, dir, mem),
            BusBackend::Replay(b) => b.try_transfer(bytes, dir, mem),
        }
    }

    fn describe(&self) -> String {
        match self {
            BusBackend::Sim(b) => b.describe(),
            BusBackend::Replay(b) => b.describe(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::BusParams;
    use crate::Calibrator;

    #[test]
    fn sim_backend_is_bit_identical_to_the_bare_simulator() {
        let mut bare = BusSimulator::new(BusParams::pcie_v1_x16(), 7);
        let mut wrapped = BusBackend::Sim(BusSimulator::new(BusParams::pcie_v1_x16(), 7));
        for &bytes in &[1u64, 1024, 1 << 20, 64 << 20] {
            let a = bare.transfer(bytes, Direction::HostToDevice, MemType::Pinned);
            let b = wrapped.transfer(bytes, Direction::HostToDevice, MemType::Pinned);
            assert_eq!(a.to_bits(), b.to_bits(), "bytes={bytes}");
        }
        assert_eq!(wrapped.kind(), "sim");
    }

    #[test]
    fn replay_backend_calibrates_like_the_bare_trace() {
        const TRACE: &str = "\
1          h2d pinned 9.9e-6
536870912  h2d pinned 0.215
1          d2h pinned 1.13e-5
536870912  d2h pinned 0.216
";
        let mut bare = RecordedBus::parse("t", TRACE).unwrap();
        let mut wrapped = BusBackend::Replay(RecordedBus::parse("t", TRACE).unwrap());
        let a = Calibrator::default().calibrate(&mut bare);
        let b = Calibrator::default().calibrate(&mut wrapped);
        assert_eq!(a.h2d.alpha.to_bits(), b.h2d.alpha.to_bits());
        assert_eq!(a.h2d.beta.to_bits(), b.h2d.beta.to_bits());
        assert_eq!(wrapped.kind(), "replay");
        assert!(wrapped.describe().contains("recorded"));
    }
}
