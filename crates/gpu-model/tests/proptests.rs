//! Property tests for the analytic GPU model.

use gpp_gpu_model::{
    candidate_space, project, project_all, project_best, project_best_with, synthesize_transformed,
    GpuSpec, SearchOpts,
};
use gpp_skeleton::builder::{idx, ProgramBuilder};
use gpp_skeleton::{ElemType, Flops, KernelCharacteristics};
use proptest::prelude::*;

/// A simple parameterized streaming kernel's characteristics.
fn chars(n: u64, loads: u8, flops: u32) -> KernelCharacteristics {
    let mut p = ProgramBuilder::new("t");
    let arrays: Vec<_> = (0..loads.max(1))
        .map(|k| p.array(format!("a{k}"), ElemType::F32, &[n as usize]))
        .collect();
    let out = p.array("out", ElemType::F32, &[n as usize]);
    let mut k = p.kernel("k");
    let i = k.parallel_loop("i", n);
    let mut s = k.statement().flops(Flops {
        adds: flops,
        ..Flops::default()
    });
    for a in &arrays {
        s = s.read(*a, &[idx(i)]);
    }
    s.write(out, &[idx(i)]).finish();
    k.finish();
    let prog = p.build().unwrap();
    prog.kernels[0].characteristics(&prog)
}

/// A 2D stencil kernel's characteristics — reuse groups make the
/// shared-memory staging class real, and a serial-loop override turns on
/// the unroll candidates, so the search space exercises every knob.
fn stencil_chars(n: usize, serial_iters: u64) -> KernelCharacteristics {
    let mut p = ProgramBuilder::new("s");
    let a = p.array("in", ElemType::F32, &[n, n]);
    let b = p.array("out", ElemType::F32, &[n, n]);
    let mut k = p.kernel("k");
    let i = k.parallel_loop("i", (n - 2) as u64);
    let j = k.parallel_loop("j", (n - 2) as u64);
    k.statement()
        .read(a, &[idx(i), idx(j) + 1])
        .read(a, &[idx(i) + 1, idx(j)])
        .read(a, &[idx(i) + 1, idx(j) + 1])
        .read(a, &[idx(i) + 1, idx(j) + 2])
        .read(a, &[idx(i) + 2, idx(j) + 1])
        .write(b, &[idx(i) + 1, idx(j) + 1])
        .flops(Flops {
            adds: 6,
            muls: 4,
            ..Flops::default()
        })
        .finish();
    k.finish();
    let prog = p.build().unwrap();
    KernelCharacteristics {
        serial_iters,
        ..prog.kernels[0].characteristics(&prog)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The best projection is never worse than any candidate.
    #[test]
    fn best_is_minimum(
        n in (1u64 << 12)..(1 << 22),
        loads in 1u8..5,
        flops in 0u32..64,
    ) {
        let c = chars(n, loads, flops);
        let spec = GpuSpec::quadro_fx_5600();
        let (best, all) = project_all("k", &c, &spec);
        prop_assert!(all.iter().all(|p| p.time >= best.time));
        prop_assert!(best.time.is_finite() && best.time > 0.0);
    }

    /// Projection time is monotone in thread count and in work per thread.
    #[test]
    fn projection_monotonicity(
        n in (1u64 << 14)..(1 << 22),
        loads in 1u8..4,
        flops in 0u32..32,
    ) {
        let spec = GpuSpec::quadro_fx_5600();
        let t = |c: &KernelCharacteristics| project_best("k", c, &spec).time;
        let base = t(&chars(n, loads, flops));
        prop_assert!(t(&chars(n * 2, loads, flops)) >= base * 0.99);
        prop_assert!(t(&chars(n, loads + 1, flops)) >= base * 0.99);
        prop_assert!(t(&chars(n, loads, flops + 200)) >= base * 0.99);
    }

    /// Every candidate transformation projects successfully or is
    /// excluded up front — and occupancy never exceeds device limits.
    #[test]
    fn candidates_respect_occupancy(
        n in (1u64 << 12)..(1 << 22),
        loads in 1u8..4,
    ) {
        let c = chars(n, loads, 8);
        let spec = GpuSpec::quadro_fx_5600();
        for config in candidate_space(&c, &spec) {
            let synth = synthesize_transformed(&c, config);
            if let Some(p) = project("k", &spec, &synth) {
                prop_assert!(p.occupancy.blocks_per_sm >= 1);
                prop_assert!(
                    p.occupancy.warps_per_sm * spec.warp_size <= spec.max_threads_per_sm
                );
                prop_assert!(p.dram_bytes >= 0.0);
            }
        }
    }

    /// A strictly better datasheet (more SMs, more bandwidth) never
    /// projects slower.
    #[test]
    fn better_hardware_is_never_slower(
        n in (1u64 << 14)..(1 << 22),
        loads in 1u8..4,
        flops in 0u32..32,
    ) {
        let c = chars(n, loads, flops);
        let base = GpuSpec::quadro_fx_5600();
        let mut better = base.clone();
        better.sms *= 2;
        better.mem_bw *= 2.0;
        let t_base = project_best("k", &c, &base).time;
        let t_better = project_best("k", &c, &better).time;
        prop_assert!(t_better <= t_base * 1.001, "{t_better} > {t_base}");
    }

    /// The SoA batch engine selects the bit-identical projection the
    /// scalar exhaustive search does — streaming and stencil kernels,
    /// with and without prune/memo, at several thread counts.
    #[test]
    fn soa_search_is_bit_identical_to_scalar(
        n in (1u64 << 10)..(1 << 22),
        loads in 1u8..5,
        flops in 0u32..64,
        serial_sel in 0usize..3,
    ) {
        let serial_iters = [1u64, 2, 8][serial_sel];
        let streaming = chars(n, loads, flops);
        let stencil = stencil_chars(256, serial_iters);
        for spec in [GpuSpec::quadro_fx_5600(), GpuSpec::tesla_c1060()] {
            for c in [&streaming, &stencil] {
                let scalar = project_best_with("k", c, &spec, SearchOpts::exhaustive());
                let reference = format!("{scalar:?}");
                for threads in [1usize, 2, 8] {
                    gpp_par::set_threads(threads);
                    for opts in [
                        SearchOpts::default(),
                        SearchOpts { prune: false, memo: false, soa: true },
                    ] {
                        let soa = project_best_with("k", c, &spec, opts);
                        prop_assert_eq!(
                            &format!("{soa:?}"),
                            &reference,
                            "threads={} opts={:?}",
                            threads,
                            opts
                        );
                    }
                }
                gpp_par::set_threads(0);
            }
        }
    }

    /// The projected DRAM traffic of a dense streaming kernel equals the
    /// useful bytes exactly (coalesced, aligned, 4-byte elements).
    #[test]
    fn streaming_traffic_is_exact(
        n in (1u64 << 14)..(1 << 22),
        loads in 1u8..5,
    ) {
        let c = chars(n, loads, 4);
        let spec = GpuSpec::quadro_fx_5600();
        let best = project_best("k", &c, &spec);
        let useful = n as f64 * 4.0 * (loads as f64 + 1.0);
        prop_assert!((best.dram_bytes / useful - 1.0).abs() < 1e-9);
    }
}
