//! The model's occupancy calculator (the public CUDA occupancy rules).

use crate::spec::GpuSpec;
use crate::transform::SynthesizedKernel;

/// Occupancy as the analytic model computes it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelOccupancy {
    /// Resident blocks per SM.
    pub blocks_per_sm: u32,
    /// Resident warps per SM.
    pub warps_per_sm: u32,
}

impl ModelOccupancy {
    /// Applies the standard occupancy rules. Returns `None` if one block
    /// cannot run at all (the search then skips the candidate).
    pub fn compute(spec: &GpuSpec, k: &SynthesizedKernel) -> Option<Self> {
        Self::compute_parts(
            spec,
            k.config.block_threads,
            k.regs_per_thread,
            k.shared_per_block,
            k.threads,
        )
    }

    /// [`Self::compute`] on bare resource figures — the single source of
    /// the integer occupancy rules, shared by the scalar path (through a
    /// `SynthesizedKernel`) and the SoA batch projector (which derives
    /// per-lane registers and shared memory without synthesizing).
    pub fn compute_parts(
        spec: &GpuSpec,
        block: u32,
        regs_per_thread: u32,
        shared_per_block: u32,
        threads: u64,
    ) -> Option<Self> {
        if block > spec.max_threads_per_block {
            return None;
        }
        let regs_per_block = regs_per_thread * block;
        if regs_per_block > spec.regs_per_sm || shared_per_block > spec.shared_per_sm {
            return None;
        }
        let by_blocks = spec.max_blocks_per_sm;
        let by_threads = spec.max_threads_per_sm / block;
        let by_shared = spec
            .shared_per_sm
            .checked_div(shared_per_block)
            .unwrap_or(u32::MAX);
        let by_regs = spec
            .regs_per_sm
            .checked_div(regs_per_block)
            .unwrap_or(u32::MAX);
        let mut blocks = by_blocks.min(by_threads).min(by_shared).min(by_regs).max(1);
        // A small grid cannot fill the SMs even if resources would allow.
        let grid_blocks = (threads.max(1)).div_ceil(block as u64);
        let grid_share = grid_blocks.div_ceil(spec.sms as u64);
        blocks = blocks.min(grid_share.max(1) as u32);
        let warps_per_block = block.div_ceil(spec.warp_size);
        Some(ModelOccupancy {
            blocks_per_sm: blocks,
            warps_per_sm: blocks * warps_per_block,
        })
    }

    /// Fraction of the SM's warp slots occupied.
    pub fn fraction(&self, spec: &GpuSpec) -> f64 {
        self.warps_per_sm as f64 / (spec.max_threads_per_sm / spec.warp_size) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::Transformation;

    fn kernel(block: u32, regs: u32, shared: u32) -> SynthesizedKernel {
        SynthesizedKernel {
            config: Transformation {
                block_threads: block,
                use_shared: shared > 0,
                unroll: 1,
                thread_axis: None,
            },
            threads: 1 << 20,
            compute_slots: 10.0,
            shared_accesses: 0.0,
            global_ops: vec![],
            syncs: 0,
            active_fraction: 1.0,
            regs_per_thread: regs,
            shared_per_block: shared,
            staged_groups: usize::from(shared > 0),
            tile_bytes: if shared > 0 { 4 } else { 0 },
        }
    }

    #[test]
    fn matches_hand_calculation() {
        let spec = GpuSpec::quadro_fx_5600();
        let o = ModelOccupancy::compute(&spec, &kernel(256, 10, 0)).unwrap();
        assert_eq!(o.blocks_per_sm, 3); // 768 / 256
        assert_eq!(o.warps_per_sm, 24);
        assert_eq!(o.fraction(&spec), 1.0);
    }

    #[test]
    fn shared_memory_limits() {
        let spec = GpuSpec::quadro_fx_5600();
        let o = ModelOccupancy::compute(&spec, &kernel(128, 10, 6 << 10)).unwrap();
        assert_eq!(o.blocks_per_sm, 2); // 16 KB / 6 KB
    }

    #[test]
    fn impossible_block_returns_none() {
        let spec = GpuSpec::quadro_fx_5600();
        assert!(ModelOccupancy::compute(&spec, &kernel(1024, 10, 0)).is_none());
        assert!(ModelOccupancy::compute(&spec, &kernel(512, 64, 0)).is_none());
        assert!(ModelOccupancy::compute(&spec, &kernel(128, 10, 20 << 10)).is_none());
    }

    #[test]
    fn zero_register_kernel_is_not_register_limited() {
        // regs_per_block = 0 must not divide-by-zero or zero out the
        // occupancy: the other limits take over.
        let spec = GpuSpec::quadro_fx_5600();
        let o = ModelOccupancy::compute(&spec, &kernel(256, 0, 0)).unwrap();
        assert_eq!(o.blocks_per_sm, 3); // 768 / 256, by-threads limited
        assert_eq!(o.warps_per_sm, 24);
        // Zero shared is likewise a no-limit, not a zero-occupancy.
        let o = ModelOccupancy::compute(&spec, &kernel(64, 0, 0)).unwrap();
        assert_eq!(o.blocks_per_sm, spec.max_blocks_per_sm);
    }

    #[test]
    fn block_exceeding_sm_thread_capacity_still_runs_alone() {
        // FX5600: 512-thread blocks fit the per-block limit exactly and
        // leave room for exactly one resident block (768 / 512 = 1).
        let spec = GpuSpec::quadro_fx_5600();
        let o = ModelOccupancy::compute(&spec, &kernel(512, 10, 0)).unwrap();
        assert_eq!(o.blocks_per_sm, 1);
        assert_eq!(o.warps_per_sm, 16);
        // One past the per-block limit is unrunnable, not clamped.
        assert!(ModelOccupancy::compute_parts(&spec, 513, 10, 0, 1 << 20).is_none());
    }

    #[test]
    fn resource_boundaries_are_inclusive() {
        let spec = GpuSpec::quadro_fx_5600();
        // Registers: 512 threads × 16 regs = 8192 = regs_per_sm exactly.
        let o = ModelOccupancy::compute(&spec, &kernel(512, 16, 0)).unwrap();
        assert_eq!(o.blocks_per_sm, 1);
        assert!(ModelOccupancy::compute(&spec, &kernel(512, 17, 0)).is_none());
        // Shared memory: exactly the whole SM's 16 KiB is still runnable.
        let o = ModelOccupancy::compute(&spec, &kernel(128, 10, spec.shared_per_sm)).unwrap();
        assert_eq!(o.blocks_per_sm, 1);
        assert!(ModelOccupancy::compute(&spec, &kernel(128, 10, spec.shared_per_sm + 1)).is_none());
    }

    #[test]
    fn warp_allocation_boundary_rounds_up() {
        // A block one thread past a warp boundary allocates a whole extra
        // warp (65 → 3 warps), while the exact multiple does not.
        let spec = GpuSpec::quadro_fx_5600();
        let exact = ModelOccupancy::compute_parts(&spec, 64, 10, 0, 1 << 20).unwrap();
        assert_eq!(exact.warps_per_sm, exact.blocks_per_sm * 2);
        let ragged = ModelOccupancy::compute_parts(&spec, 65, 10, 0, 1 << 20).unwrap();
        assert_eq!(ragged.warps_per_sm, ragged.blocks_per_sm * 3);
    }

    #[test]
    fn tiny_grid_clamps_to_one_block_per_sm() {
        let spec = GpuSpec::quadro_fx_5600();
        // 64 threads total on a 16-SM part: one 64-thread block exists in
        // the whole grid, so at most one block is resident anywhere.
        let o = ModelOccupancy::compute_parts(&spec, 64, 10, 0, 64).unwrap();
        assert_eq!(o.blocks_per_sm, 1);
        // threads = 0 is degenerate but must not panic or return 0 blocks.
        let o = ModelOccupancy::compute_parts(&spec, 64, 10, 0, 0).unwrap();
        assert_eq!(o.blocks_per_sm, 1);
    }
}
