//! The model's occupancy calculator (the public CUDA occupancy rules).

use crate::spec::GpuSpec;
use crate::transform::SynthesizedKernel;

/// Occupancy as the analytic model computes it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelOccupancy {
    /// Resident blocks per SM.
    pub blocks_per_sm: u32,
    /// Resident warps per SM.
    pub warps_per_sm: u32,
}

impl ModelOccupancy {
    /// Applies the standard occupancy rules. Returns `None` if one block
    /// cannot run at all (the search then skips the candidate).
    pub fn compute(spec: &GpuSpec, k: &SynthesizedKernel) -> Option<Self> {
        let block = k.config.block_threads;
        if block > spec.max_threads_per_block {
            return None;
        }
        let regs_per_block = k.regs_per_thread * block;
        if regs_per_block > spec.regs_per_sm || k.shared_per_block > spec.shared_per_sm {
            return None;
        }
        let by_blocks = spec.max_blocks_per_sm;
        let by_threads = spec.max_threads_per_sm / block;
        let by_shared = spec
            .shared_per_sm
            .checked_div(k.shared_per_block)
            .unwrap_or(u32::MAX);
        let by_regs = spec
            .regs_per_sm
            .checked_div(regs_per_block)
            .unwrap_or(u32::MAX);
        let mut blocks = by_blocks.min(by_threads).min(by_shared).min(by_regs).max(1);
        // A small grid cannot fill the SMs even if resources would allow.
        let grid_blocks = (k.threads.max(1)).div_ceil(block as u64);
        let grid_share = grid_blocks.div_ceil(spec.sms as u64);
        blocks = blocks.min(grid_share.max(1) as u32);
        let warps_per_block = block.div_ceil(spec.warp_size);
        Some(ModelOccupancy {
            blocks_per_sm: blocks,
            warps_per_sm: blocks * warps_per_block,
        })
    }

    /// Fraction of the SM's warp slots occupied.
    pub fn fraction(&self, spec: &GpuSpec) -> f64 {
        self.warps_per_sm as f64 / (spec.max_threads_per_sm / spec.warp_size) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::Transformation;

    fn kernel(block: u32, regs: u32, shared: u32) -> SynthesizedKernel {
        SynthesizedKernel {
            config: Transformation {
                block_threads: block,
                use_shared: shared > 0,
                unroll: 1,
                thread_axis: None,
            },
            threads: 1 << 20,
            compute_slots: 10.0,
            shared_accesses: 0.0,
            global_ops: vec![],
            syncs: 0,
            active_fraction: 1.0,
            regs_per_thread: regs,
            shared_per_block: shared,
        }
    }

    #[test]
    fn matches_hand_calculation() {
        let spec = GpuSpec::quadro_fx_5600();
        let o = ModelOccupancy::compute(&spec, &kernel(256, 10, 0)).unwrap();
        assert_eq!(o.blocks_per_sm, 3); // 768 / 256
        assert_eq!(o.warps_per_sm, 24);
        assert_eq!(o.fraction(&spec), 1.0);
    }

    #[test]
    fn shared_memory_limits() {
        let spec = GpuSpec::quadro_fx_5600();
        let o = ModelOccupancy::compute(&spec, &kernel(128, 10, 6 << 10)).unwrap();
        assert_eq!(o.blocks_per_sm, 2); // 16 KB / 6 KB
    }

    #[test]
    fn impossible_block_returns_none() {
        let spec = GpuSpec::quadro_fx_5600();
        assert!(ModelOccupancy::compute(&spec, &kernel(1024, 10, 0)).is_none());
        assert!(ModelOccupancy::compute(&spec, &kernel(512, 64, 0)).is_none());
        assert!(ModelOccupancy::compute(&spec, &kernel(128, 10, 20 << 10)).is_none());
    }
}
