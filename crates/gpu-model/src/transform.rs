//! The transformation space GROPHECY explores.
//!
//! "With the code skeleton, GROPHECY is able to explore various code
//! transformations, synthesize performance characteristics for each
//! transformation, and then supply the characteristics to a GPU
//! performance model" (§II-C). We model the three transformations that
//! matter most on G80-class hardware:
//!
//! * **thread-block geometry** — trades occupancy against per-block
//!   resources,
//! * **shared-memory staging** — stencil-style reusable loads are staged
//!   into shared memory by the block cooperatively, converting redundant
//!   (and typically misaligned) global loads into cheap on-chip accesses
//!   at the price of shared-memory capacity, barriers, and a few extra
//!   registers,
//! * **unrolling** — removes loop bookkeeping at the price of registers.

use crate::spec::GpuSpec;
use gpp_skeleton::{CoalesceClass, KernelCharacteristics, MemAccessChar};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// One candidate code transformation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Transformation {
    /// Threads per block.
    pub block_threads: u32,
    /// Stage reusable loads through shared memory.
    pub use_shared: bool,
    /// Unroll factor of the per-thread serial loop (1 = none).
    pub unroll: u8,
    /// Loop-interchange choice: which parallel loop maps to consecutive
    /// thread IDs. `None` = the kernel's innermost parallel loop (the
    /// default mapping). The characteristics fed to
    /// [`synthesize_transformed`] must have been synthesized with this
    /// same axis.
    pub thread_axis: Option<gpp_skeleton::LoopId>,
}

impl Transformation {
    /// A default-mapped transformation with the given block size.
    pub fn with_block(block_threads: u32) -> Self {
        Transformation {
            block_threads,
            use_shared: false,
            unroll: 1,
            thread_axis: None,
        }
    }
}

impl std::fmt::Display for Transformation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Sequential conditional writes: formatting a candidate never
        // allocates (no `format!` temporaries for absent options), so
        // labels cost nothing until a winner is actually displayed.
        write!(f, "block={}", self.block_threads)?;
        if self.use_shared {
            f.write_str(", smem")?;
        }
        if self.unroll > 1 {
            write!(f, ", unroll={}", self.unroll)?;
        }
        if let Some(l) = self.thread_axis {
            write!(f, ", axis=i{}", l.0)?;
        }
        Ok(())
    }
}

/// Baseline per-thread register estimate for a skeleton-derived kernel.
pub(crate) const BASE_REGS: u32 = 10;

/// Enumerates the candidate transformations for a kernel.
///
/// Shared-memory staging is only proposed when the kernel actually has
/// reusable loads; unrolling only when there is a serial loop to unroll.
pub fn candidate_space(chars: &KernelCharacteristics, spec: &GpuSpec) -> Vec<Transformation> {
    let mut out = Vec::new();
    candidate_space_into(chars, spec, &mut out);
    out
}

/// [`candidate_space`] into a caller-owned buffer — the arena'd search
/// reuses one `Vec` across searches so the steady state allocates
/// nothing. The buffer is cleared first; capacity is retained.
pub fn candidate_space_into(
    chars: &KernelCharacteristics,
    spec: &GpuSpec,
    out: &mut Vec<Transformation>,
) {
    out.clear();
    let shared_options: &[bool] = if chars.sharable_load_fraction > 0.0 {
        &[false, true]
    } else {
        &[false]
    };
    let unroll_options: &[u8] = if chars.serial_iters > 1 {
        &[1, 2, 4]
    } else {
        &[1]
    };
    for &block_threads in &[64u32, 128, 192, 256, 384, 512] {
        if block_threads > spec.max_threads_per_block {
            continue;
        }
        // Don't launch blocks larger than the whole grid.
        if (block_threads as u64) > chars.threads.max(1) * 2 {
            continue;
        }
        for &use_shared in shared_options {
            for &unroll in unroll_options {
                out.push(Transformation {
                    block_threads,
                    use_shared,
                    unroll,
                    thread_axis: None,
                });
            }
        }
    }
}

/// The characteristics of a kernel *after* a transformation is applied —
/// what both the analytic projection and (via the core crate's lowering)
/// the measured implementation execute.
#[derive(Debug, Clone)]
pub struct SynthesizedKernel {
    /// The transformation applied.
    pub config: Transformation,
    /// Total GPU threads.
    pub threads: u64,
    /// Weighted ALU slots per thread (after unrolling savings).
    pub compute_slots: f64,
    /// Shared-memory accesses per thread (staged reads + cooperative
    /// fills).
    pub shared_accesses: f64,
    /// Remaining global access streams.
    pub global_ops: Vec<MemAccessChar>,
    /// Barriers per thread.
    pub syncs: u32,
    /// Mean active fraction (divergence).
    pub active_fraction: f64,
    /// Register demand per thread.
    pub regs_per_thread: u32,
    /// Shared memory per block, bytes.
    pub shared_per_block: u32,
    /// Number of reuse groups staged into shared memory (0 when staging
    /// is off or nothing qualified). Together with [`Self::tile_bytes`]
    /// this lets the SoA batch projector recompute `shared_per_block`
    /// for *other* block sizes without re-synthesizing.
    pub staged_groups: usize,
    /// Widest staged element size, bytes (0 when nothing is staged).
    pub tile_bytes: usize,
}

/// Applies a transformation to a kernel's characteristics.
pub fn synthesize_transformed(
    chars: &KernelCharacteristics,
    config: Transformation,
) -> SynthesizedKernel {
    let mut compute_slots = chars.weighted_ops_per_thread;
    let mut regs = BASE_REGS + 2 * (config.unroll as f64).log2() as u32;
    let mut shared_accesses = 0.0;
    let mut shared_per_block = 0u32;
    let mut syncs = 0u32;
    let mut global_ops = Vec::with_capacity(chars.accesses.len());

    if config.unroll > 1 {
        // Unrolling eliminates a fraction of loop bookkeeping.
        compute_slots *= 1.0 - 0.04 * (config.unroll as f64).log2();
    }

    // Reuse groups with at least two member loads get staged: every member
    // becomes a shared-memory access and the group is fetched once by a
    // cooperative tile fill.
    let staged_groups: std::collections::BTreeMap<u32, usize> = if config.use_shared {
        let mut sizes = std::collections::BTreeMap::new();
        for acc in &chars.accesses {
            if let Some(g) = acc.reuse_group {
                *sizes.entry(g).or_insert(0usize) += 1;
            }
        }
        sizes.retain(|_, &mut n| n >= 2);
        sizes
    } else {
        Default::default()
    };

    let mut tile_bytes = 0usize;
    let mut fill_aligned = true;
    for acc in &chars.accesses {
        let staged = acc
            .reuse_group
            .is_some_and(|g| staged_groups.contains_key(&g));
        if staged {
            // Served from shared memory after the cooperative fill.
            shared_accesses += acc.per_thread;
            tile_bytes = tile_bytes.max(acc.elem_bytes);
            // A stencil group with offset members forces the tile fill to
            // start at an offset row (the halo), so the fill itself is
            // misaligned on strict-coalescing hardware — the classic
            // unpadded-stencil penalty.
            fill_aligned &= acc.aligned;
        } else {
            global_ops.push(acc.clone());
        }
    }

    if !staged_groups.is_empty() {
        // One cooperative, coalesced, aligned tile fill per staged group:
        // ~1.15 loads per thread (the halo ring costs the extra 15%),
        // plus a barrier before use and one after.
        for _ in staged_groups.keys() {
            global_ops.push(MemAccessChar {
                array: gpp_skeleton::ArrayId(u32::MAX),
                kind: gpp_skeleton::AccessKind::Read,
                elem_bytes: tile_bytes.max(4),
                class: CoalesceClass::Coalesced,
                per_thread: 1.15,
                sharable: false,
                aligned: fill_aligned,
                reuse_group: None,
            });
        }
        syncs = 2;
        regs += 4;
        // Tile: one element per thread plus a ~30% halo ring, per group.
        shared_per_block = (config.block_threads as f64
            * tile_bytes.max(4) as f64
            * 1.3
            * staged_groups.len() as f64) as u32;
    }

    SynthesizedKernel {
        config,
        threads: chars.threads,
        compute_slots,
        shared_accesses,
        global_ops,
        syncs,
        active_fraction: chars.avg_active_fraction,
        regs_per_thread: regs,
        shared_per_block,
        staged_groups: staged_groups.len(),
        tile_bytes,
    }
}

/// Entries the synthesis memo holds before it is wiped (a safety valve
/// for unbounded what-if streams, not a tuning knob — entries are tiny).
const MEMO_CAP: usize = 8192;

type MemoKey = (u128, Transformation);
type Memo = Mutex<HashMap<MemoKey, Arc<SynthesizedKernel>, BuildFnv>>;

/// FNV-1a for the memo map. The key's first component is already a
/// high-entropy fingerprint, so SipHash's DoS resistance buys nothing
/// here and costs ~100 ns on every probe of the search hot loop.
struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl std::hash::Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }
    fn write_u8(&mut self, v: u8) {
        self.write_u64(v as u64);
    }
    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x100_0000_01b3);
    }
    fn write_u128(&mut self, v: u128) {
        self.write_u64(v as u64);
        self.write_u64((v >> 64) as u64);
    }
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

type BuildFnv = std::hash::BuildHasherDefault<FnvHasher>;

static MEMO: OnceLock<Memo> = OnceLock::new();
static MEMO_HITS: AtomicU64 = AtomicU64::new(0);
static MEMO_MISSES: AtomicU64 = AtomicU64::new(0);

/// `(hits, misses)` of the synthesis memo since process start.
pub fn synth_memo_stats() -> (u64, u64) {
    (
        MEMO_HITS.load(Ordering::Relaxed),
        MEMO_MISSES.load(Ordering::Relaxed),
    )
}

/// A precomputed memo key for one kernel's characteristics. Computing
/// the fingerprint walks every access, so the search computes it once
/// per kernel and reuses it across the whole candidate space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CharsKey(u128);

impl CharsKey {
    /// Fingerprints the characteristics.
    pub fn of(chars: &KernelCharacteristics) -> CharsKey {
        CharsKey(chars_fingerprint(chars))
    }

    /// The raw 128-bit fingerprint value. Stable across processes (the
    /// hash has no per-run seeding), so it doubles as a wire-observable
    /// identity: served `project` replies expose it in hex, and the
    /// gateway routes and coalesces on it.
    pub fn value(self) -> u128 {
        self.0
    }
}

/// A 128-bit structural fingerprint of a whole program: the per-kernel
/// characteristics fingerprints folded in kernel order (FNV-128 style).
/// Formatting-only differences between two skeleton texts produce the
/// same fingerprint; any structural change (shapes, accesses, kernel
/// order) changes it. This is the consistent-hash routing and
/// single-flight coalescing key used by `gpp gateway`.
pub fn program_fingerprint(program: &gpp_skeleton::Program) -> u128 {
    // FNV-128 offset basis / prime.
    let mut h: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    h = (h ^ program.kernels.len() as u128).wrapping_mul(PRIME);
    for kernel in &program.kernels {
        let f = CharsKey::of(&kernel.characteristics(program)).value();
        h = (h ^ f).wrapping_mul(PRIME);
    }
    h
}

/// [`synthesize_transformed`] behind a process-wide memo keyed by
/// (characteristics fingerprint, config). Synthesis is a pure function
/// of that key, so a hit returns exactly the value a miss would compute
/// — repeated projections of the same kernels (iteration sweeps, served
/// what-if streams) skip the synthesis work entirely.
pub fn synthesize_cached(
    chars: &KernelCharacteristics,
    config: Transformation,
) -> Arc<SynthesizedKernel> {
    synthesize_cached_keyed(CharsKey::of(chars), chars, config)
}

/// [`synthesize_cached`] with the characteristics fingerprint already
/// computed (the hot path: one fingerprint per search, not per
/// candidate).
pub fn synthesize_cached_keyed(
    key: CharsKey,
    chars: &KernelCharacteristics,
    config: Transformation,
) -> Arc<SynthesizedKernel> {
    let key = (key.0, config);
    let memo = MEMO.get_or_init(Default::default);
    if let Some(hit) = memo.lock().unwrap().get(&key) {
        MEMO_HITS.fetch_add(1, Ordering::Relaxed);
        return hit.clone();
    }
    MEMO_MISSES.fetch_add(1, Ordering::Relaxed);
    let value = Arc::new(synthesize_transformed(chars, config));
    let mut guard = memo.lock().unwrap();
    if guard.len() >= MEMO_CAP {
        guard.clear();
    }
    guard.insert(key, value.clone());
    value
}

/// A 128-bit structural fingerprint of the characteristics (two FNV-1a
/// streams over a canonical field encoding; the kernel name is excluded
/// so same-shape kernels share entries). Collisions would need both
/// 64-bit halves to collide on the same `Transformation`.
fn chars_fingerprint(chars: &KernelCharacteristics) -> u128 {
    // FNV-1a over whole 64-bit words, both streams folded in one pass
    // with no staging buffer — this runs once per transformation search,
    // but a search over a hot kernel is itself only microseconds.
    let mut h1: u64 = 0xcbf2_9ce4_8422_2325;
    let mut h2: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut push = |v: u64| {
        h1 = (h1 ^ v).wrapping_mul(0x100_0000_01b3);
        h2 = (h2 ^ v).wrapping_mul(0x100_0000_01b3);
    };
    push(chars.threads);
    push(chars.serial_iters);
    push(chars.flops_per_thread.to_bits());
    push(chars.weighted_ops_per_thread.to_bits());
    push(chars.avg_active_fraction.to_bits());
    push(chars.sharable_load_fraction.to_bits());
    push(chars.accesses.len() as u64);
    for a in &chars.accesses {
        push(a.array.0 as u64);
        push(a.kind.is_read() as u64);
        push(a.elem_bytes as u64);
        push(match a.class {
            CoalesceClass::Coalesced => 1,
            CoalesceClass::Broadcast => 2,
            CoalesceClass::Strided(s) => 0x100 + s as u64,
            CoalesceClass::Irregular => 3,
        });
        push(a.per_thread.to_bits());
        push(a.sharable as u64);
        push(a.aligned as u64);
        push(a.reuse_group.map_or(u64::MAX, |g| g as u64));
    }
    ((h1 as u128) << 64) | h2 as u128
}

impl SynthesizedKernel {
    /// Global bytes requested per thread (model view: useful bytes for
    /// streaming accesses, segment-wasteful for scattered ones).
    pub fn global_bytes_per_thread(&self, spec: &GpuSpec) -> f64 {
        let half = (spec.warp_size / 2) as f64;
        self.global_ops
            .iter()
            .map(|op| {
                let per_halfwarp = match op.class {
                    // Aligned coalesced accesses cost exactly their useful
                    // bytes; misaligned ones pay the documented
                    // per-transaction penalty of the target architecture.
                    CoalesceClass::Coalesced if op.aligned => half * op.elem_bytes as f64,
                    CoalesceClass::Coalesced => {
                        spec.misaligned_halfwarp_transactions.min(half) * spec.segment_bytes as f64
                    }
                    CoalesceClass::Broadcast => spec.segment_bytes as f64,
                    CoalesceClass::Strided(s) => (s as f64).min(half) * spec.segment_bytes as f64,
                    CoalesceClass::Irregular => half * spec.segment_bytes as f64,
                };
                op.per_thread * per_halfwarp / half
            })
            .sum()
    }

    /// Global memory instructions per thread.
    pub fn global_mem_insts(&self) -> f64 {
        self.global_ops.iter().map(|op| op.per_thread).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpp_skeleton::builder::{idx, ProgramBuilder};
    use gpp_skeleton::{ElemType, Flops};

    fn stencil_chars() -> KernelCharacteristics {
        let mut p = ProgramBuilder::new("stencil");
        let n = 256usize;
        let a = p.array("in", ElemType::F32, &[n, n]);
        let b = p.array("out", ElemType::F32, &[n, n]);
        let mut k = p.kernel("k");
        let i = k.parallel_loop("i", (n - 2) as u64);
        let j = k.parallel_loop("j", (n - 2) as u64);
        k.statement()
            .read(a, &[idx(i), idx(j) + 1])
            .read(a, &[idx(i) + 1, idx(j)])
            .read(a, &[idx(i) + 1, idx(j) + 1])
            .read(a, &[idx(i) + 1, idx(j) + 2])
            .read(a, &[idx(i) + 2, idx(j) + 1])
            .write(b, &[idx(i) + 1, idx(j) + 1])
            .flops(Flops {
                adds: 6,
                muls: 4,
                ..Flops::default()
            })
            .finish();
        k.finish();
        let prog = p.build().unwrap();
        prog.kernels[0].characteristics(&prog)
    }

    fn vadd_chars() -> KernelCharacteristics {
        let mut p = ProgramBuilder::new("vadd");
        let a = p.array("a", ElemType::F32, &[1 << 20]);
        let b = p.array("b", ElemType::F32, &[1 << 20]);
        let c = p.array("c", ElemType::F32, &[1 << 20]);
        let mut k = p.kernel("add");
        let i = k.parallel_loop("i", 1 << 20);
        k.statement()
            .read(a, &[idx(i)])
            .read(b, &[idx(i)])
            .write(c, &[idx(i)])
            .flops(Flops {
                adds: 1,
                ..Flops::default()
            })
            .finish();
        k.finish();
        let prog = p.build().unwrap();
        prog.kernels[0].characteristics(&prog)
    }

    #[test]
    fn candidate_space_includes_shared_only_for_reuse() {
        let spec = GpuSpec::quadro_fx_5600();
        let stencil = candidate_space(&stencil_chars(), &spec);
        assert!(stencil.iter().any(|t| t.use_shared));
        let vadd = candidate_space(&vadd_chars(), &spec);
        assert!(!vadd.iter().any(|t| t.use_shared));
        // No serial loop in either: no unroll candidates.
        assert!(vadd.iter().all(|t| t.unroll == 1));
    }

    #[test]
    fn shared_staging_moves_loads_off_dram() {
        let chars = stencil_chars();
        let spec = GpuSpec::quadro_fx_5600();
        let plain = synthesize_transformed(
            &chars,
            Transformation {
                block_threads: 256,
                use_shared: false,
                unroll: 1,
                thread_axis: None,
            },
        );
        let staged = synthesize_transformed(
            &chars,
            Transformation {
                block_threads: 256,
                use_shared: true,
                unroll: 1,
                thread_axis: None,
            },
        );
        assert!(staged.global_bytes_per_thread(&spec) < plain.global_bytes_per_thread(&spec));
        assert!(staged.shared_accesses > 0.0);
        assert_eq!(staged.syncs, 2);
        assert!(staged.shared_per_block > 0);
        assert!(staged.regs_per_thread > plain.regs_per_thread);
    }

    #[test]
    fn unroll_trims_compute_and_costs_registers() {
        let chars = KernelCharacteristics {
            serial_iters: 8,
            ..stencil_chars()
        };
        let plain = synthesize_transformed(
            &chars,
            Transformation {
                block_threads: 128,
                use_shared: false,
                unroll: 1,
                thread_axis: None,
            },
        );
        let unrolled = synthesize_transformed(
            &chars,
            Transformation {
                block_threads: 128,
                use_shared: false,
                unroll: 4,
                thread_axis: None,
            },
        );
        assert!(unrolled.compute_slots < plain.compute_slots);
        assert!(unrolled.regs_per_thread > plain.regs_per_thread);
    }

    #[test]
    fn vadd_bytes_per_thread_is_exact() {
        let chars = vadd_chars();
        let spec = GpuSpec::quadro_fx_5600();
        let s = synthesize_transformed(
            &chars,
            Transformation {
                block_threads: 256,
                use_shared: false,
                unroll: 1,
                thread_axis: None,
            },
        );
        // 2 loads + 1 store of 4 B, all coalesced: 12 useful bytes.
        assert!((s.global_bytes_per_thread(&spec) - 12.0).abs() < 1e-12);
        assert_eq!(s.global_mem_insts(), 3.0);
    }

    #[test]
    fn display_mentions_options() {
        let t = Transformation {
            block_threads: 128,
            use_shared: true,
            unroll: 4,
            thread_axis: None,
        };
        let s = t.to_string();
        assert!(s.contains("128") && s.contains("smem") && s.contains("unroll=4"));
    }
}
