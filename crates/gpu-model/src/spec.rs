//! The GPU *datasheet*: what an analytic model is allowed to know.

/// Publicly documented device parameters — the inputs GROPHECY's
/// "GPU performance model \[that\] can be configured to reflect different
/// GPU architectures" (§II-C) takes.
///
/// Deliberately absent (the simulator knows them; the model must not):
/// measured DRAM efficiency, scattered-traffic derating, exact load
/// latency, launch overhead, misalignment penalties.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Marketing name.
    pub name: String,
    /// Streaming multiprocessors.
    pub sms: u32,
    /// Scalar processors per SM.
    pub sps_per_sm: u32,
    /// Threads per warp.
    pub warp_size: u32,
    /// Shader clock, Hz.
    pub clock_hz: f64,
    /// Peak DRAM bandwidth from the datasheet, bytes/second.
    pub mem_bw: f64,
    /// The model's standard bandwidth derate assumption: real kernels
    /// reach ~85% of datasheet bandwidth. (A textbook rule of thumb —
    /// optimistic for scatter-heavy kernels, which is a real error
    /// source.)
    pub bw_derate: f64,
    /// The model's assumed global-load latency in cycles (the usual
    /// "400–600 cycles" folklore number; we take 450).
    pub mem_latency_cycles: f64,
    /// Memory segment size for coalescing math, bytes.
    pub segment_bytes: u32,
    /// Max resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Max resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Max threads per block.
    pub max_threads_per_block: u32,
    /// Shared memory per SM, bytes.
    pub shared_per_sm: u32,
    /// Registers per SM.
    pub regs_per_sm: u32,
    /// Kernel launch overhead, seconds — public knowledge from vendor
    /// documentation and microbenchmarks (~10 us in the CUDA 2.x era).
    pub launch_overhead: f64,
    /// Cost of a misaligned-but-sequential half-warp access in 64-byte
    /// segment-equivalents — public knowledge from the CUDA programming
    /// guide: 16 separate 32-byte transactions (= 8 segment-equivalents)
    /// on compute capability < 1.2 (G80); 2 on relaxed-coalescing parts
    /// (GT200+).
    pub misaligned_halfwarp_transactions: f64,
}

impl GpuSpec {
    /// The paper's device, from its public datasheet.
    pub fn quadro_fx_5600() -> Self {
        GpuSpec {
            name: "Quadro FX 5600".into(),
            sms: 16,
            sps_per_sm: 8,
            warp_size: 32,
            clock_hz: 1.35e9,
            mem_bw: 76.8e9,
            bw_derate: 0.80,
            mem_latency_cycles: 450.0,
            segment_bytes: 64,
            max_threads_per_sm: 768,
            max_blocks_per_sm: 8,
            max_threads_per_block: 512,
            shared_per_sm: 16 << 10,
            regs_per_sm: 8192,
            launch_overhead: 10.0e-6,
            misaligned_halfwarp_transactions: 8.0,
        }
    }

    /// Tesla C1060 datasheet, for cross-device projection experiments.
    pub fn tesla_c1060() -> Self {
        GpuSpec {
            name: "Tesla C1060".into(),
            sms: 30,
            sps_per_sm: 8,
            warp_size: 32,
            clock_hz: 1.296e9,
            mem_bw: 102.0e9,
            bw_derate: 0.80,
            mem_latency_cycles: 450.0,
            segment_bytes: 64,
            max_threads_per_sm: 1024,
            max_blocks_per_sm: 8,
            max_threads_per_block: 512,
            shared_per_sm: 16 << 10,
            regs_per_sm: 16384,
            launch_overhead: 8.0e-6,
            misaligned_halfwarp_transactions: 2.0,
        }
    }

    /// Cycles to issue one instruction for a whole warp.
    pub fn cycles_per_warp_inst(&self) -> f64 {
        self.warp_size as f64 / self.sps_per_sm as f64
    }

    /// The bandwidth the model plans with.
    pub fn assumed_mem_bw(&self) -> f64 {
        self.mem_bw * self.bw_derate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasheet_values() {
        let s = GpuSpec::quadro_fx_5600();
        assert_eq!(s.cycles_per_warp_inst(), 4.0);
        assert!((s.assumed_mem_bw() - 76.8e9 * 0.80).abs() < 1.0);
    }

    #[test]
    fn c1060_has_more_sms() {
        assert!(GpuSpec::tesla_c1060().sms > GpuSpec::quadro_fx_5600().sms);
    }
}
