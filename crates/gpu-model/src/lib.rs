//! The GROPHECY analytic GPU performance model.
//!
//! This crate is our reimplementation of the projection engine of
//! GROPHECY (Meng, Morozov, Kumaran, Vishwanath, Uram — SC'11), the
//! framework the paper extends. Given a kernel's synthesized
//! characteristics (from `gpp-skeleton`) and a GPU *datasheet*
//! ([`GpuSpec`]), it:
//!
//! 1. enumerates a space of code transformations — thread-block geometry,
//!    shared-memory staging of reusable loads, unrolling
//!    ([`transform::candidate_space`]),
//! 2. synthesizes the performance characteristics each transformed kernel
//!    would have ([`transform::SynthesizedKernel`]),
//! 3. projects each candidate's execution time with an MWP/CWP-style
//!    analytic throughput model ([`project::project`]), and
//! 4. reports the best achievable time and the transformation that
//!    reaches it ([`project::project_best`]) — "GROPHECY projects the best
//!    achievable performance and the transformations necessary to reach
//!    that performance" (paper §II-C).
//!
//! The search runs on the `gpp-par` global pool with a branch-and-bound
//! prune (memory-roofline lower bound) and a process-wide synthesis memo;
//! all three are observationally pure — the selected best projection is
//! bit-identical to the serial exhaustive search at any `GPP_THREADS`.
//!
//! The model sees only *public* information: the code skeleton and the
//! device datasheet. It does **not** see the timing simulator's internal
//! parameters (scattered-traffic DRAM derating, exact latency, launch
//! overhead, wave quantization), so its projections carry an honest error
//! of the magnitude the paper reports for kernel times (~15% average,
//! §I) — that asymmetry is deliberate and is what makes the downstream
//! validation meaningful.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod occupancy;
pub mod project;
mod soa;
pub mod spec;
pub mod transform;

pub use occupancy::ModelOccupancy;
pub use project::{
    project, project_all, project_best, project_best_with, KernelProjection, ProjectionBound,
    SearchOpts,
};
pub use spec::GpuSpec;
pub use transform::{
    candidate_space, candidate_space_into, program_fingerprint, synth_memo_stats,
    synthesize_cached, synthesize_cached_keyed, synthesize_transformed, CharsKey,
    SynthesizedKernel, Transformation,
};
