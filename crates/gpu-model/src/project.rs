//! The analytic kernel-time projection.
//!
//! For a synthesized (transformed) kernel the model computes three
//! throughput bounds and takes the maximum — an MWP/CWP-style analysis in
//! the spirit of Hong & Kim (ISCA'09), which GROPHECY's internal GPU model
//! follows:
//!
//! * compute: total warp-instructions through the device's issue width,
//! * memory: total DRAM traffic through the (derated) datasheet bandwidth,
//! * latency: if too few warps are resident to hide the assumed load
//!   latency, the SM idles between completions.
//!
//! **Known, deliberate approximations** (the error the paper measures):
//! blocks per SM are treated as a continuous average (no wave
//! quantization/tail), launch overhead uses the documented figure rather
//! than the machine's true one, and one uniform bandwidth derate is
//! applied regardless of access pattern (real scattered traffic runs
//! slower — the dominant CFD error).

use crate::occupancy::ModelOccupancy;
use crate::spec::GpuSpec;
use crate::transform::{
    candidate_space, synthesize_cached_keyed, synthesize_transformed, CharsKey, SynthesizedKernel,
    Transformation,
};
use gpp_skeleton::KernelCharacteristics;
use std::sync::Mutex;

/// Pipeline-drain cost of one `__syncthreads()`, in cycles.
pub(crate) const BARRIER_CYCLES: f64 = 24.0;

/// Which analytic bound dominated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProjectionBound {
    /// Instruction issue throughput.
    Compute,
    /// DRAM bandwidth.
    Memory,
    /// Exposed latency (low occupancy).
    Latency,
}

impl std::fmt::Display for ProjectionBound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProjectionBound::Compute => write!(f, "compute"),
            ProjectionBound::Memory => write!(f, "memory"),
            ProjectionBound::Latency => write!(f, "latency"),
        }
    }
}

/// The projection for one candidate transformation.
#[derive(Debug, Clone)]
pub struct KernelProjection {
    /// Kernel name.
    pub name: String,
    /// The transformation this projection assumes.
    pub config: Transformation,
    /// Projected execution time, seconds.
    pub time: f64,
    /// Dominating bound.
    pub bound: ProjectionBound,
    /// Projected occupancy.
    pub occupancy: ModelOccupancy,
    /// Projected DRAM traffic, bytes.
    pub dram_bytes: f64,
}

/// The name-free evaluation of one candidate (what the search actually
/// computes; the winner gets its `String` name exactly once). Shared
/// with the SoA batch engine (`crate::soa`).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Eval {
    pub(crate) time: f64,
    pub(crate) bound: ProjectionBound,
    pub(crate) occupancy: ModelOccupancy,
    pub(crate) dram_bytes: f64,
}

/// Projects the execution time of one synthesized kernel.
///
/// Returns `None` if the configuration cannot run (occupancy = 0).
pub fn project(name: &str, spec: &GpuSpec, kernel: &SynthesizedKernel) -> Option<KernelProjection> {
    let ev = project_inner(spec, kernel)?;
    Some(KernelProjection {
        name: name.to_string(),
        config: kernel.config,
        time: ev.time,
        bound: ev.bound,
        occupancy: ev.occupancy,
        dram_bytes: ev.dram_bytes,
    })
}

fn project_inner(spec: &GpuSpec, kernel: &SynthesizedKernel) -> Option<Eval> {
    let occ = ModelOccupancy::compute(spec, kernel)?;
    let cpi = spec.cycles_per_warp_inst();
    let warp_size = spec.warp_size as f64;
    let total_warps = (kernel.threads as f64 / warp_size).ceil();

    // Per-warp issue cycles: arithmetic + staged shared accesses, with the
    // average divergence penalty, plus barrier drains.
    let divergence = 1.0 / kernel.active_fraction.clamp(1e-6, 1.0);
    let warp_cycles = (kernel.compute_slots + kernel.shared_accesses) * cpi * divergence
        + kernel.syncs as f64 * BARRIER_CYCLES;

    // Bound 1: compute. All warps through all SMs' issue pipes.
    let compute_time = total_warps * warp_cycles / (spec.sms as f64 * spec.clock_hz);

    // Bound 2: memory. Total traffic through derated datasheet bandwidth.
    let bytes_per_thread = kernel.global_bytes_per_thread(spec);
    let dram_bytes = kernel.threads as f64 * bytes_per_thread;
    let memory_time = dram_bytes / spec.assumed_mem_bw();

    // Bound 3: latency. Each warp's critical path is its memory
    // instructions' latencies plus its compute; `warps_per_sm` warps
    // overlap on an SM.
    let mem_insts = kernel.global_mem_insts();
    let critical_path = mem_insts * spec.mem_latency_cycles + warp_cycles;
    let latency_time =
        total_warps * critical_path / (occ.warps_per_sm as f64 * spec.sms as f64 * spec.clock_hz);

    let exec = compute_time.max(memory_time).max(latency_time);
    let time = exec + spec.launch_overhead;
    let bound = if exec == compute_time && compute_time >= memory_time {
        ProjectionBound::Compute
    } else if exec == memory_time {
        ProjectionBound::Memory
    } else {
        ProjectionBound::Latency
    };

    Some(Eval {
        time,
        bound,
        occupancy: occ,
        dram_bytes,
    })
}

/// Options controlling the transformation-space search. The defaults are
/// what production paths use; every switch is observationally pure —
/// they change wall-clock time, never the selected best projection.
#[derive(Debug, Clone, Copy)]
pub struct SearchOpts {
    /// Branch-and-bound prune: skip a candidate whose analytic lower
    /// bound (memory-traffic roofline + launch overhead) already loses
    /// to the best time found so far.
    pub prune: bool,
    /// Route synthesis through the process-wide memo
    /// ([`synthesize_cached`]).
    pub memo: bool,
    /// Evaluate candidates through the SoA batch engine (one synthesis
    /// per staging class, structure-of-arrays lanes in a reusable
    /// per-thread arena, work-stealing over candidate blocks) instead of
    /// per-candidate scalar evaluation. Bit-identical output.
    pub soa: bool,
}

impl Default for SearchOpts {
    fn default() -> Self {
        SearchOpts {
            prune: true,
            memo: true,
            soa: true,
        }
    }
}

impl SearchOpts {
    /// The legacy exhaustive search: no pruning, no memo, scalar
    /// per-candidate evaluation. With `GPP_THREADS=1` this is
    /// bit-for-bit the serial seed code path.
    pub fn exhaustive() -> Self {
        SearchOpts {
            prune: false,
            memo: false,
            soa: false,
        }
    }

    /// The pre-SoA production path: scalar evaluation with prune and
    /// memo. Kept for benchmarks and bit-identity comparisons against
    /// the batch engine.
    pub fn scalar() -> Self {
        SearchOpts {
            prune: true,
            memo: true,
            soa: false,
        }
    }
}

/// The best-so-far prune threshold: the lexicographic minimum of
/// `(time, candidate index)` over everything evaluated so far. Ordering
/// by index as the tie-break makes pruning safe under *any* evaluation
/// order: a candidate is skipped only if it provably loses that
/// tie-break to an already-evaluated candidate, which the final winner
/// beats or equals.
pub(crate) struct Threshold {
    pub(crate) time: f64,
    pub(crate) idx: usize,
}

/// Explores the transformation space and returns only the best
/// projection — the hot path (the core projector calls this once per
/// kernel × axis). Work is distributed over the `gpp-par` global pool
/// and reduced serially in candidate-index order, so the result is
/// bit-identical to the serial exhaustive search at any thread count,
/// with or without pruning.
pub fn project_best(name: &str, chars: &KernelCharacteristics, spec: &GpuSpec) -> KernelProjection {
    project_best_with(name, chars, spec, SearchOpts::default())
}

/// [`project_best`] with explicit search options (benchmarks and the
/// determinism suite compare the paths).
pub fn project_best_with(
    name: &str,
    chars: &KernelCharacteristics,
    spec: &GpuSpec,
    opts: SearchOpts,
) -> KernelProjection {
    if opts.soa {
        return crate::soa::project_best_soa(name, chars, spec, opts);
    }
    let candidates = candidate_space(chars, spec);
    // One fingerprint per search, shared by every candidate's memo lookup.
    let memo_key = opts.memo.then(|| CharsKey::of(chars));

    // Memory traffic is invariant across block size and unroll factor —
    // it depends only on whether reusable loads are staged (see
    // `synthesize_transformed`: staging rewrites the access streams, the
    // other knobs touch compute slots and resources). One synthesis per
    // staging option therefore yields an *exact* per-candidate memory
    // roofline, and
    //     time(c) = max(compute, memory, latency) + launch ≥ memory(c) + launch
    // makes it a valid lower bound for the prune.
    let lower_bounds: [Option<f64>; 2] = if opts.prune && !candidates.is_empty() {
        let mut lb = [None, None];
        for use_shared in [false, true] {
            if candidates.iter().any(|c| c.use_shared == use_shared) {
                let probe = Transformation {
                    use_shared,
                    unroll: 1,
                    thread_axis: None,
                    ..candidates[0]
                };
                let synth = synthesize_for(chars, probe, memo_key);
                let dram = chars.threads as f64 * synth.global_bytes_per_thread(spec);
                lb[use_shared as usize] = Some(dram / spec.assumed_mem_bw() + spec.launch_overhead);
            }
        }
        lb
    } else {
        [None, None]
    };

    let threshold = Mutex::new(Threshold {
        time: f64::INFINITY,
        idx: usize::MAX,
    });
    let evals: Vec<Option<Eval>> = gpp_par::par_map(candidates.len(), |i| {
        let config = candidates[i];
        if let Some(lb) = lower_bounds[config.use_shared as usize] {
            let t = threshold.lock().unwrap();
            if lb > t.time || (lb == t.time && i > t.idx) {
                return None; // provably loses the (time, index) tie-break
            }
        }
        let synth = synthesize_for(chars, config, memo_key);
        let ev = project_inner(spec, &synth)?;
        if opts.prune {
            let mut t = threshold.lock().unwrap();
            if ev.time < t.time || (ev.time == t.time && i < t.idx) {
                *t = Threshold {
                    time: ev.time,
                    idx: i,
                };
            }
        }
        Some(ev)
    });

    // Serial index-ordered reduction: first strict minimum wins, exactly
    // like the seed's stable sort-by-time.
    let mut best: Option<(usize, Eval)> = None;
    for (i, ev) in evals.into_iter().enumerate() {
        if let Some(ev) = ev {
            if best.is_none_or(|(_, b)| ev.time < b.time) {
                best = Some((i, ev));
            }
        }
    }
    let (idx, ev) = best.unwrap_or_else(|| {
        panic!("no runnable transformation for kernel `{name}` — block sizes exhausted")
    });
    KernelProjection {
        name: name.to_string(),
        config: candidates[idx],
        time: ev.time,
        bound: ev.bound,
        occupancy: ev.occupancy,
        dram_bytes: ev.dram_bytes,
    }
}

/// Explores the whole transformation space and materializes every
/// candidate for reports, sorted by projected time: "GROPHECY projects
/// the best achievable performance and the transformations necessary to
/// reach that performance". Never prunes (a report wants the losers
/// too); the hot path should call [`project_best`] instead.
pub fn project_all(
    name: &str,
    chars: &KernelCharacteristics,
    spec: &GpuSpec,
) -> (KernelProjection, Vec<KernelProjection>) {
    let candidates = candidate_space(chars, spec);
    let evals: Vec<Option<Eval>> = gpp_par::par_map(candidates.len(), |i| {
        let synth = synthesize_transformed(chars, candidates[i]);
        project_inner(spec, &synth)
    });
    let mut all: Vec<KernelProjection> = candidates
        .iter()
        .zip(evals)
        .filter_map(|(config, ev)| {
            let ev = ev?;
            Some(KernelProjection {
                name: name.to_string(),
                config: *config,
                time: ev.time,
                bound: ev.bound,
                occupancy: ev.occupancy,
                dram_bytes: ev.dram_bytes,
            })
        })
        .collect();
    assert!(
        !all.is_empty(),
        "no runnable transformation for kernel `{name}` — block sizes exhausted"
    );
    all.sort_by(|a, b| a.time.total_cmp(&b.time));
    (all[0].clone(), all)
}

/// Synthesis with or without the process-wide memo. The memo holds
/// exactly the value the direct path computes (synthesis is pure), so
/// both arms are interchangeable bit-for-bit.
pub(crate) fn synthesize_for(
    chars: &KernelCharacteristics,
    config: Transformation,
    memo_key: Option<CharsKey>,
) -> std::sync::Arc<SynthesizedKernel> {
    match memo_key {
        Some(key) => synthesize_cached_keyed(key, chars, config),
        None => std::sync::Arc::new(synthesize_transformed(chars, config)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpp_skeleton::builder::{idx, ProgramBuilder};
    use gpp_skeleton::{ElemType, Flops, Program};

    fn vadd_program(n: u64) -> Program {
        let mut p = ProgramBuilder::new("vadd");
        let a = p.array("a", ElemType::F32, &[n as usize]);
        let b = p.array("b", ElemType::F32, &[n as usize]);
        let c = p.array("c", ElemType::F32, &[n as usize]);
        let mut k = p.kernel("add");
        let i = k.parallel_loop("i", n);
        k.statement()
            .read(a, &[idx(i)])
            .read(b, &[idx(i)])
            .write(c, &[idx(i)])
            .flops(Flops {
                adds: 1,
                ..Flops::default()
            })
            .finish();
        k.finish();
        p.build().unwrap()
    }

    fn stencil_program(n: usize) -> Program {
        let mut p = ProgramBuilder::new("stencil");
        let a = p.array("in", ElemType::F32, &[n, n]);
        let b = p.array("out", ElemType::F32, &[n, n]);
        let mut k = p.kernel("k");
        let i = k.parallel_loop("i", (n - 2) as u64);
        let j = k.parallel_loop("j", (n - 2) as u64);
        k.statement()
            .read(a, &[idx(i), idx(j) + 1])
            .read(a, &[idx(i) + 1, idx(j)])
            .read(a, &[idx(i) + 1, idx(j) + 1])
            .read(a, &[idx(i) + 1, idx(j) + 2])
            .read(a, &[idx(i) + 2, idx(j) + 1])
            .write(b, &[idx(i) + 1, idx(j) + 1])
            .flops(Flops {
                adds: 10,
                muls: 4,
                ..Flops::default()
            })
            .finish();
        k.finish();
        p.build().unwrap()
    }

    #[test]
    fn vadd_projection_is_memory_bound_at_datasheet_bandwidth() {
        let prog = vadd_program(1 << 24);
        let chars = prog.kernels[0].characteristics(&prog);
        let spec = GpuSpec::quadro_fx_5600();
        let (best, all) = project_all("add", &chars, &spec);
        assert_eq!(best.bound, ProjectionBound::Memory);
        // 16M threads × 12 B / (76.8 GB/s × 0.85) ≈ 3.08 ms + launch.
        let expect = (1u64 << 24) as f64 * 12.0 / (76.8e9 * 0.80) + spec.launch_overhead;
        assert!(
            (best.time / expect - 1.0).abs() < 0.01,
            "{} vs {}",
            best.time,
            expect
        );
        assert!(all.len() > 3);
    }

    #[test]
    fn stencil_projection_prefers_shared_memory() {
        let prog = stencil_program(1024);
        let chars = prog.kernels[0].characteristics(&prog);
        let spec = GpuSpec::quadro_fx_5600();
        let (best, all) = project_all("k", &chars, &spec);
        assert!(best.config.use_shared, "best config: {}", best.config);
        // The best projection beats the worst by a meaningful factor.
        let worst = all.last().unwrap();
        assert!(worst.time > best.time * 1.3);
    }

    #[test]
    fn tiny_kernel_candidates_hit_the_latency_wall() {
        // A 2048-element kernel cannot fill the machine: small-block
        // candidates are latency-bound, and the best configuration escapes
        // only by choosing large blocks.
        let prog = vadd_program(2048);
        let chars = prog.kernels[0].characteristics(&prog);
        let spec = GpuSpec::quadro_fx_5600();
        let (best, all) = project_all("add", &chars, &spec);
        assert!(all.iter().any(|p| p.bound == ProjectionBound::Latency));
        assert!(best.config.block_threads >= 256, "best: {}", best.config);
        let worst = all.last().unwrap();
        assert_eq!(worst.bound, ProjectionBound::Latency);
        assert!(worst.time > best.time);
    }

    #[test]
    fn faster_device_projects_faster() {
        let prog = vadd_program(1 << 24);
        let chars = prog.kernels[0].characteristics(&prog);
        let g80 = project_best("add", &chars, &GpuSpec::quadro_fx_5600());
        let gt200 = project_best("add", &chars, &GpuSpec::tesla_c1060());
        assert!(gt200.time < g80.time);
    }

    #[test]
    fn projection_time_scales_with_data() {
        let small = vadd_program(1 << 20);
        let big = vadd_program(1 << 24);
        let spec = GpuSpec::quadro_fx_5600();
        let cs = small.kernels[0].characteristics(&small);
        let cb = big.kernels[0].characteristics(&big);
        let ps = project_best("add", &cs, &spec);
        let pb = project_best("add", &cb, &spec);
        let ratio = pb.time / ps.time;
        assert!((12.0..20.0).contains(&ratio), "ratio {ratio}");
    }
}
