//! The analytic kernel-time projection.
//!
//! For a synthesized (transformed) kernel the model computes three
//! throughput bounds and takes the maximum — an MWP/CWP-style analysis in
//! the spirit of Hong & Kim (ISCA'09), which GROPHECY's internal GPU model
//! follows:
//!
//! * compute: total warp-instructions through the device's issue width,
//! * memory: total DRAM traffic through the (derated) datasheet bandwidth,
//! * latency: if too few warps are resident to hide the assumed load
//!   latency, the SM idles between completions.
//!
//! **Known, deliberate approximations** (the error the paper measures):
//! blocks per SM are treated as a continuous average (no wave
//! quantization/tail), launch overhead uses the documented figure rather
//! than the machine's true one, and one uniform bandwidth derate is
//! applied regardless of access pattern (real scattered traffic runs
//! slower — the dominant CFD error).

use crate::occupancy::ModelOccupancy;
use crate::spec::GpuSpec;
use crate::transform::{
    candidate_space, synthesize_transformed, SynthesizedKernel, Transformation,
};
use gpp_skeleton::KernelCharacteristics;

/// Pipeline-drain cost of one `__syncthreads()`, in cycles.
const BARRIER_CYCLES: f64 = 24.0;

/// Which analytic bound dominated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProjectionBound {
    /// Instruction issue throughput.
    Compute,
    /// DRAM bandwidth.
    Memory,
    /// Exposed latency (low occupancy).
    Latency,
}

impl std::fmt::Display for ProjectionBound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProjectionBound::Compute => write!(f, "compute"),
            ProjectionBound::Memory => write!(f, "memory"),
            ProjectionBound::Latency => write!(f, "latency"),
        }
    }
}

/// The projection for one candidate transformation.
#[derive(Debug, Clone)]
pub struct KernelProjection {
    /// Kernel name.
    pub name: String,
    /// The transformation this projection assumes.
    pub config: Transformation,
    /// Projected execution time, seconds.
    pub time: f64,
    /// Dominating bound.
    pub bound: ProjectionBound,
    /// Projected occupancy.
    pub occupancy: ModelOccupancy,
    /// Projected DRAM traffic, bytes.
    pub dram_bytes: f64,
}

/// Projects the execution time of one synthesized kernel.
///
/// Returns `None` if the configuration cannot run (occupancy = 0).
pub fn project(name: &str, spec: &GpuSpec, kernel: &SynthesizedKernel) -> Option<KernelProjection> {
    let occ = ModelOccupancy::compute(spec, kernel)?;
    let cpi = spec.cycles_per_warp_inst();
    let warp_size = spec.warp_size as f64;
    let total_warps = (kernel.threads as f64 / warp_size).ceil();

    // Per-warp issue cycles: arithmetic + staged shared accesses, with the
    // average divergence penalty, plus barrier drains.
    let divergence = 1.0 / kernel.active_fraction.clamp(1e-6, 1.0);
    let warp_cycles = (kernel.compute_slots + kernel.shared_accesses) * cpi * divergence
        + kernel.syncs as f64 * BARRIER_CYCLES;

    // Bound 1: compute. All warps through all SMs' issue pipes.
    let compute_time = total_warps * warp_cycles / (spec.sms as f64 * spec.clock_hz);

    // Bound 2: memory. Total traffic through derated datasheet bandwidth.
    let bytes_per_thread = kernel.global_bytes_per_thread(spec);
    let dram_bytes = kernel.threads as f64 * bytes_per_thread;
    let memory_time = dram_bytes / spec.assumed_mem_bw();

    // Bound 3: latency. Each warp's critical path is its memory
    // instructions' latencies plus its compute; `warps_per_sm` warps
    // overlap on an SM.
    let mem_insts = kernel.global_mem_insts();
    let critical_path = mem_insts * spec.mem_latency_cycles + warp_cycles;
    let latency_time =
        total_warps * critical_path / (occ.warps_per_sm as f64 * spec.sms as f64 * spec.clock_hz);

    let exec = compute_time.max(memory_time).max(latency_time);
    let time = exec + spec.launch_overhead;
    let bound = if exec == compute_time && compute_time >= memory_time {
        ProjectionBound::Compute
    } else if exec == memory_time {
        ProjectionBound::Memory
    } else {
        ProjectionBound::Latency
    };

    Some(KernelProjection {
        name: name.to_string(),
        config: kernel.config,
        time,
        bound,
        occupancy: occ,
        dram_bytes,
    })
}

/// Explores the whole transformation space and returns the best projection
/// plus every candidate (for reports): "GROPHECY projects the best
/// achievable performance and the transformations necessary to reach that
/// performance".
pub fn project_best(
    name: &str,
    chars: &KernelCharacteristics,
    spec: &GpuSpec,
) -> (KernelProjection, Vec<KernelProjection>) {
    let mut all: Vec<KernelProjection> = candidate_space(chars, spec)
        .into_iter()
        .filter_map(|config| {
            let synth = synthesize_transformed(chars, config);
            project(name, spec, &synth)
        })
        .collect();
    assert!(
        !all.is_empty(),
        "no runnable transformation for kernel `{name}` — block sizes exhausted"
    );
    all.sort_by(|a, b| a.time.total_cmp(&b.time));
    (all[0].clone(), all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpp_skeleton::builder::{idx, ProgramBuilder};
    use gpp_skeleton::{ElemType, Flops, Program};

    fn vadd_program(n: u64) -> Program {
        let mut p = ProgramBuilder::new("vadd");
        let a = p.array("a", ElemType::F32, &[n as usize]);
        let b = p.array("b", ElemType::F32, &[n as usize]);
        let c = p.array("c", ElemType::F32, &[n as usize]);
        let mut k = p.kernel("add");
        let i = k.parallel_loop("i", n);
        k.statement()
            .read(a, &[idx(i)])
            .read(b, &[idx(i)])
            .write(c, &[idx(i)])
            .flops(Flops {
                adds: 1,
                ..Flops::default()
            })
            .finish();
        k.finish();
        p.build().unwrap()
    }

    fn stencil_program(n: usize) -> Program {
        let mut p = ProgramBuilder::new("stencil");
        let a = p.array("in", ElemType::F32, &[n, n]);
        let b = p.array("out", ElemType::F32, &[n, n]);
        let mut k = p.kernel("k");
        let i = k.parallel_loop("i", (n - 2) as u64);
        let j = k.parallel_loop("j", (n - 2) as u64);
        k.statement()
            .read(a, &[idx(i), idx(j) + 1])
            .read(a, &[idx(i) + 1, idx(j)])
            .read(a, &[idx(i) + 1, idx(j) + 1])
            .read(a, &[idx(i) + 1, idx(j) + 2])
            .read(a, &[idx(i) + 2, idx(j) + 1])
            .write(b, &[idx(i) + 1, idx(j) + 1])
            .flops(Flops {
                adds: 10,
                muls: 4,
                ..Flops::default()
            })
            .finish();
        k.finish();
        p.build().unwrap()
    }

    #[test]
    fn vadd_projection_is_memory_bound_at_datasheet_bandwidth() {
        let prog = vadd_program(1 << 24);
        let chars = prog.kernels[0].characteristics(&prog);
        let spec = GpuSpec::quadro_fx_5600();
        let (best, all) = project_best("add", &chars, &spec);
        assert_eq!(best.bound, ProjectionBound::Memory);
        // 16M threads × 12 B / (76.8 GB/s × 0.85) ≈ 3.08 ms + launch.
        let expect = (1u64 << 24) as f64 * 12.0 / (76.8e9 * 0.80) + spec.launch_overhead;
        assert!(
            (best.time / expect - 1.0).abs() < 0.01,
            "{} vs {}",
            best.time,
            expect
        );
        assert!(all.len() > 3);
    }

    #[test]
    fn stencil_projection_prefers_shared_memory() {
        let prog = stencil_program(1024);
        let chars = prog.kernels[0].characteristics(&prog);
        let spec = GpuSpec::quadro_fx_5600();
        let (best, all) = project_best("k", &chars, &spec);
        assert!(best.config.use_shared, "best config: {}", best.config);
        // The best projection beats the worst by a meaningful factor.
        let worst = all.last().unwrap();
        assert!(worst.time > best.time * 1.3);
    }

    #[test]
    fn tiny_kernel_candidates_hit_the_latency_wall() {
        // A 2048-element kernel cannot fill the machine: small-block
        // candidates are latency-bound, and the best configuration escapes
        // only by choosing large blocks.
        let prog = vadd_program(2048);
        let chars = prog.kernels[0].characteristics(&prog);
        let spec = GpuSpec::quadro_fx_5600();
        let (best, all) = project_best("add", &chars, &spec);
        assert!(all.iter().any(|p| p.bound == ProjectionBound::Latency));
        assert!(best.config.block_threads >= 256, "best: {}", best.config);
        let worst = all.last().unwrap();
        assert_eq!(worst.bound, ProjectionBound::Latency);
        assert!(worst.time > best.time);
    }

    #[test]
    fn faster_device_projects_faster() {
        let prog = vadd_program(1 << 24);
        let chars = prog.kernels[0].characteristics(&prog);
        let (g80, _) = project_best("add", &chars, &GpuSpec::quadro_fx_5600());
        let (gt200, _) = project_best("add", &chars, &GpuSpec::tesla_c1060());
        assert!(gt200.time < g80.time);
    }

    #[test]
    fn projection_time_scales_with_data() {
        let small = vadd_program(1 << 20);
        let big = vadd_program(1 << 24);
        let spec = GpuSpec::quadro_fx_5600();
        let cs = small.kernels[0].characteristics(&small);
        let cb = big.kernels[0].characteristics(&big);
        let (ps, _) = project_best("add", &cs, &spec);
        let (pb, _) = project_best("add", &cb, &spec);
        let ratio = pb.time / ps.time;
        assert!((12.0..20.0).contains(&ratio), "ratio {ratio}");
    }
}
