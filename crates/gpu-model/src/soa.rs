//! The SoA batch projector — the zero-allocation transformation-search
//! hot path.
//!
//! The scalar search ([`crate::project::project_best_with`] with
//! `soa: false`) pays per candidate: a synthesis (or a memo probe — a
//! lock, a hash, an `Arc` clone), a heap-backed `SynthesizedKernel`, and
//! scalar roofline arithmetic. But almost everything a candidate needs is
//! invariant across the block-geometry and unroll knobs: the access
//! streams, shared-memory traffic, barriers, and DRAM roofline depend
//! *only* on whether reusable loads are staged (see
//! [`crate::transform::synthesize_transformed`]). This module therefore
//! synthesizes **once per staging class** (at most twice per search),
//! folds each class into a small [`StagingAgg`] of plain `f64`/integer
//! aggregates, and evaluates the whole candidate space as
//! structure-of-arrays lanes in tight loops: one integer/occupancy pass,
//! one pure-`f64` arithmetic pass, one masked index-ordered reduction.
//!
//! Scratch lives in a per-thread [`SearchArena`] — the candidate buffer
//! and the lanes are reused across searches, so the steady-state serial
//! hot path allocates nothing but the winner's name `String`.
//!
//! # Bit-identity
//!
//! Every lane reproduces the scalar path's float expressions *textually*
//! — same associativity, same cast sites, same `clamp`/`max` order — so
//! an evaluated lane is bit-for-bit the scalar `project_inner` of the
//! same candidate, and the (time, candidate-index) lexicographic prune
//! skips only provable losers. The determinism suite and the
//! skeleton × machine proptests hold the engine to that claim at every
//! thread count.

use crate::occupancy::ModelOccupancy;
use crate::project::{
    synthesize_for, Eval, KernelProjection, ProjectionBound, SearchOpts, Threshold, BARRIER_CYCLES,
};
use crate::spec::GpuSpec;
use crate::transform::{
    candidate_space_into, CharsKey, SynthesizedKernel, Transformation, BASE_REGS,
};
use gpp_skeleton::KernelCharacteristics;
use std::cell::RefCell;
use std::sync::Mutex;

/// Candidates evaluated per SoA block: the work-stealing granule
/// (`gpp_par::par_map_blocks`) and the prune-threshold update interval.
/// Small enough that typical spaces (≤ 36 candidates) split across
/// workers, large enough that the lanes amortize the block overhead.
const BLOCK: usize = 16;

thread_local! {
    static ARENA: RefCell<SearchArena> = RefCell::new(SearchArena::default());
}

/// Checks the calling thread's arena out of thread-local storage for the
/// duration of `f`. Take-and-restore (instead of holding a `RefCell`
/// borrow) lets the caller participate as a pool worker: a re-entrant
/// checkout on the same thread sees a fresh default arena, not a borrow
/// panic.
fn with_arena<R>(f: impl FnOnce(&mut SearchArena) -> R) -> R {
    ARENA.with(|cell| {
        let mut arena = cell.take();
        let r = f(&mut arena);
        cell.replace(arena);
        r
    })
}

/// Reusable per-thread scratch for the SoA search: the candidate list,
/// the per-candidate lanes, and the per-(kernel, spec) setup cache.
/// Capacity persists across searches.
#[derive(Default)]
pub(crate) struct SearchArena {
    candidates: Vec<Transformation>,
    lanes: Lanes,
    cache: Vec<SetupEntry>,
    next_evict: usize,
}

/// Most entries the per-thread setup cache holds; replacement is
/// round-robin. A serve deployment cycles over a handful of hot kernels
/// per machine, so a small cache hits nearly always, and a miss costs
/// only what every search paid before the cache existed.
const SETUP_CACHE_CAP: usize = 8;

/// One cached search setup: everything `project_best_soa` derives from
/// `(chars, spec)` before the roofline arithmetic — the candidate space,
/// the per-staging-class aggregates, and the **static lanes**: per-
/// candidate issue cycles and occupancy, which depend only on the key.
/// All of it is a pure function of `(chars, spec)`, so a hit replays the
/// integer passes from the arena and the search runs only the pure-`f64`
/// roofline lanes and the reduction.
///
/// The static lanes cover the *whole* space (no pruning at build time):
/// a pruned lane is a provable loser of the (time, index) tie-break, so
/// evaluating it anyway cannot change the argmin — the prune exists to
/// save work, and here the work is already done.
struct SetupEntry {
    chars_key: CharsKey,
    spec_key: u64,
    candidates: Vec<Transformation>,
    aggs: [Option<StagingAgg>; 2],
    /// Per-candidate `(slots + shared) * cpi * divergence + syncs *
    /// BARRIER_CYCLES` — the unroll-dependent issue cycles.
    warp_cycles: Vec<f64>,
    blocks_per_sm: Vec<u32>,
    /// `0` marks an unrunnable candidate (occupancy rules reject it).
    warps_per_sm: Vec<u32>,
}

/// FNV-1a over every field of the spec (the name included): any spec
/// that differs anywhere hashes differently, so a cache hit implies the
/// cached setup was computed from an identical spec.
fn spec_fingerprint(spec: &GpuSpec) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut push = |v: u64| h = (h ^ v).wrapping_mul(0x100_0000_01b3);
    for b in spec.name.bytes() {
        push(b as u64);
    }
    push(spec.sms as u64);
    push(spec.sps_per_sm as u64);
    push(spec.warp_size as u64);
    push(spec.clock_hz.to_bits());
    push(spec.mem_bw.to_bits());
    push(spec.bw_derate.to_bits());
    push(spec.mem_latency_cycles.to_bits());
    push(spec.segment_bytes as u64);
    push(spec.max_threads_per_sm as u64);
    push(spec.max_blocks_per_sm as u64);
    push(spec.max_threads_per_block as u64);
    push(spec.shared_per_sm as u64);
    push(spec.regs_per_sm as u64);
    push(spec.launch_overhead.to_bits());
    push(spec.misaligned_halfwarp_transactions.to_bits());
    h
}

/// The structure-of-arrays lanes, indexed by in-block candidate
/// position. `warps_per_sm == 0` marks a lane that is skipped (pruned or
/// unrunnable) — warp counts of runnable candidates are always ≥ 1.
#[derive(Default)]
struct Lanes {
    warp_cycles: Vec<f64>,
    compute_time: Vec<f64>,
    latency_time: Vec<f64>,
    time: Vec<f64>,
    blocks_per_sm: Vec<u32>,
    warps_per_sm: Vec<u32>,
}

impl Lanes {
    /// Zeroes the first `n` lanes, reusing capacity.
    fn reset(&mut self, n: usize) {
        for lane in [
            &mut self.warp_cycles,
            &mut self.compute_time,
            &mut self.latency_time,
            &mut self.time,
        ] {
            lane.clear();
            lane.resize(n, 0.0);
        }
        for lane in [&mut self.blocks_per_sm, &mut self.warps_per_sm] {
            lane.clear();
            lane.resize(n, 0);
        }
    }
}

/// Everything a lane needs that is constant across the whole search.
struct KernelConsts {
    /// `chars.weighted_ops_per_thread` — compute slots before unrolling.
    base_slots: f64,
    divergence: f64,
    cpi: f64,
    total_warps: f64,
    threads: u64,
    /// `sms_f * clock_hz`, the compute-bound denominator (a single
    /// product in the scalar path too, so pre-multiplying is exact).
    sm_clock: f64,
    sms_f: f64,
    clock_hz: f64,
    mem_latency_cycles: f64,
    launch_overhead: f64,
}

impl KernelConsts {
    fn of(chars: &KernelCharacteristics, spec: &GpuSpec) -> Self {
        let warp_size = spec.warp_size as f64;
        KernelConsts {
            base_slots: chars.weighted_ops_per_thread,
            divergence: 1.0 / chars.avg_active_fraction.clamp(1e-6, 1.0),
            cpi: spec.cycles_per_warp_inst(),
            total_warps: (chars.threads as f64 / warp_size).ceil(),
            threads: chars.threads,
            sm_clock: spec.sms as f64 * spec.clock_hz,
            sms_f: spec.sms as f64,
            clock_hz: spec.clock_hz,
            mem_latency_cycles: spec.mem_latency_cycles,
            launch_overhead: spec.launch_overhead,
        }
    }
}

/// Per-staging-class aggregates: one synthesis per class covers every
/// block size and unroll factor in that class (memory traffic, barriers,
/// and shared accesses are geometry-invariant).
struct StagingAgg {
    shared_accesses: f64,
    syncs_f: f64,
    /// Extra registers the cooperative fill costs (4 when anything is
    /// staged, matching `synthesize_transformed`).
    reg_bonus: u32,
    staged_groups: usize,
    tile_bytes: usize,
    mem_insts: f64,
    dram_bytes: f64,
    memory_time: f64,
    /// `memory_time + launch_overhead`: the exact memory-roofline prune
    /// bound the scalar path uses.
    lower_bound: f64,
}

impl StagingAgg {
    fn of(synth: &SynthesizedKernel, spec: &GpuSpec) -> Self {
        let bytes_per_thread = synth.global_bytes_per_thread(spec);
        let dram_bytes = synth.threads as f64 * bytes_per_thread;
        let memory_time = dram_bytes / spec.assumed_mem_bw();
        StagingAgg {
            shared_accesses: synth.shared_accesses,
            syncs_f: synth.syncs as f64,
            reg_bonus: if synth.staged_groups > 0 { 4 } else { 0 },
            staged_groups: synth.staged_groups,
            tile_bytes: synth.tile_bytes,
            mem_insts: synth.global_mem_insts(),
            dram_bytes,
            memory_time,
            lower_bound: memory_time + spec.launch_overhead,
        }
    }
}

/// Evaluates one block of candidates into `lanes` and returns the
/// block's index-ordered strict-minimum `(global index, Eval)`. `base`
/// is the global index of `cands[0]`; `threshold`, when present, prunes
/// lanes whose class lower bound provably loses the (time, index)
/// tie-break.
fn eval_block(
    spec: &GpuSpec,
    consts: &KernelConsts,
    aggs: &[Option<StagingAgg>; 2],
    cands: &[Transformation],
    base: usize,
    lanes: &mut Lanes,
    threshold: Option<&Threshold>,
) -> Option<(usize, Eval)> {
    let n = cands.len();
    lanes.reset(n);

    // Pass 1: per-lane resources and occupancy (integer rules), plus the
    // per-warp issue cycles that depend on the unroll factor.
    for (i, &c) in cands.iter().enumerate() {
        let agg = aggs[c.use_shared as usize].as_ref().expect("class present");
        if let Some(t) = threshold {
            if agg.lower_bound > t.time || (agg.lower_bound == t.time && base + i > t.idx) {
                continue; // provably loses the (time, index) tie-break
            }
        }
        let mut slots = consts.base_slots;
        if c.unroll > 1 {
            slots *= 1.0 - 0.04 * (c.unroll as f64).log2();
        }
        let regs = BASE_REGS + 2 * (c.unroll as f64).log2() as u32 + agg.reg_bonus;
        let shared_per_block = if agg.staged_groups > 0 {
            (c.block_threads as f64 * agg.tile_bytes.max(4) as f64 * 1.3 * agg.staged_groups as f64)
                as u32
        } else {
            0
        };
        if let Some(occ) = ModelOccupancy::compute_parts(
            spec,
            c.block_threads,
            regs,
            shared_per_block,
            consts.threads,
        ) {
            lanes.blocks_per_sm[i] = occ.blocks_per_sm;
            lanes.warps_per_sm[i] = occ.warps_per_sm;
            lanes.warp_cycles[i] = (slots + agg.shared_accesses) * consts.cpi * consts.divergence
                + agg.syncs_f * BARRIER_CYCLES;
        }
    }

    // Pass 2: the pure-f64 roofline lanes — tight, branch-free except
    // for the per-class aggregate pick, and safe on skipped lanes (their
    // garbage times are masked out by `warps_per_sm == 0` below).
    for i in 0..n {
        let agg = aggs[cands[i].use_shared as usize]
            .as_ref()
            .expect("class present");
        let warp_cycles = lanes.warp_cycles[i];
        let compute_time = consts.total_warps * warp_cycles / consts.sm_clock;
        let critical_path = agg.mem_insts * consts.mem_latency_cycles + warp_cycles;
        let latency_time = consts.total_warps * critical_path
            / (lanes.warps_per_sm[i] as f64 * consts.sms_f * consts.clock_hz);
        let exec = compute_time.max(agg.memory_time).max(latency_time);
        lanes.compute_time[i] = compute_time;
        lanes.latency_time[i] = latency_time;
        lanes.time[i] = exec + consts.launch_overhead;
    }

    // Pass 3: masked index-ordered strict minimum, then materialize the
    // winner's full evaluation (bound from the same comparisons the
    // scalar path makes).
    let mut best: Option<usize> = None;
    for i in 0..n {
        if lanes.warps_per_sm[i] == 0 {
            continue;
        }
        if best.is_none_or(|b| lanes.time[i] < lanes.time[b]) {
            best = Some(i);
        }
    }
    let i = best?;
    let agg = aggs[cands[i].use_shared as usize]
        .as_ref()
        .expect("class present");
    let compute_time = lanes.compute_time[i];
    let latency_time = lanes.latency_time[i];
    let exec = compute_time.max(agg.memory_time).max(latency_time);
    let bound = if exec == compute_time && compute_time >= agg.memory_time {
        ProjectionBound::Compute
    } else if exec == agg.memory_time {
        ProjectionBound::Memory
    } else {
        ProjectionBound::Latency
    };
    Some((
        base + i,
        Eval {
            time: lanes.time[i],
            bound,
            occupancy: ModelOccupancy {
                blocks_per_sm: lanes.blocks_per_sm[i],
                warps_per_sm: lanes.warps_per_sm[i],
            },
            dram_bytes: agg.dram_bytes,
        },
    ))
}

/// One synthesis per staging class present in the space (the same probe
/// the scalar prune uses, so memo entries are shared), folded into the
/// per-class aggregates.
fn build_aggs(
    chars: &KernelCharacteristics,
    spec: &GpuSpec,
    candidates: &[Transformation],
    memo_key: Option<CharsKey>,
) -> [Option<StagingAgg>; 2] {
    let mut aggs: [Option<StagingAgg>; 2] = [None, None];
    for use_shared in [false, true] {
        if candidates.iter().any(|c| c.use_shared == use_shared) {
            let probe = Transformation {
                use_shared,
                unroll: 1,
                thread_axis: None,
                ..candidates[0]
            };
            let synth = synthesize_for(chars, probe, memo_key);
            aggs[use_shared as usize] = Some(StagingAgg::of(&synth, spec));
        }
    }
    aggs
}

/// Builds the full cached setup for `(chars, spec)`: candidate space,
/// per-class aggregates, and the static lanes. The per-lane resource and
/// occupancy code is the same as `eval_block`'s pass 1 — kept textually
/// identical so a cached lane is bit-for-bit a freshly computed one —
/// except that nothing is pruned: the cache outlives any one search's
/// threshold.
fn build_entry(
    chars: &KernelCharacteristics,
    spec: &GpuSpec,
    memo_key: Option<CharsKey>,
    chars_key: CharsKey,
    spec_key: u64,
    consts: &KernelConsts,
) -> SetupEntry {
    let mut candidates = Vec::new();
    candidate_space_into(chars, spec, &mut candidates);
    let aggs = build_aggs(chars, spec, &candidates, memo_key);
    let n = candidates.len();
    let mut warp_cycles = vec![0.0; n];
    let mut blocks_per_sm = vec![0u32; n];
    let mut warps_per_sm = vec![0u32; n];
    for i in 0..n {
        let c = candidates[i];
        let agg = aggs[c.use_shared as usize].as_ref().expect("class present");
        let mut slots = consts.base_slots;
        if c.unroll > 1 {
            slots *= 1.0 - 0.04 * (c.unroll as f64).log2();
        }
        let regs = BASE_REGS + 2 * (c.unroll as f64).log2() as u32 + agg.reg_bonus;
        let shared_per_block = if agg.staged_groups > 0 {
            (c.block_threads as f64 * agg.tile_bytes.max(4) as f64 * 1.3 * agg.staged_groups as f64)
                as u32
        } else {
            0
        };
        if let Some(occ) = ModelOccupancy::compute_parts(
            spec,
            c.block_threads,
            regs,
            shared_per_block,
            consts.threads,
        ) {
            blocks_per_sm[i] = occ.blocks_per_sm;
            warps_per_sm[i] = occ.warps_per_sm;
            warp_cycles[i] = (slots + agg.shared_accesses) * consts.cpi * consts.divergence
                + agg.syncs_f * BARRIER_CYCLES;
        }
    }
    SetupEntry {
        chars_key,
        spec_key,
        candidates,
        aggs,
        warp_cycles,
        blocks_per_sm,
        warps_per_sm,
    }
}

/// Evaluates a range of a cached entry's static lanes: the pure-`f64`
/// roofline per lane (the same expressions as `eval_block`'s pass 2) and
/// the masked index-ordered strict minimum. No pruning — every runnable
/// lane is already materialized, so evaluating all of them is both
/// cheaper than threshold bookkeeping and trivially order-independent.
fn eval_entry(
    entry: &SetupEntry,
    consts: &KernelConsts,
    r: std::ops::Range<usize>,
) -> Option<(usize, Eval)> {
    let mut best: Option<(usize, f64)> = None;
    for i in r {
        let warps = entry.warps_per_sm[i];
        if warps == 0 {
            continue;
        }
        let agg = entry.aggs[entry.candidates[i].use_shared as usize]
            .as_ref()
            .expect("class present");
        let warp_cycles = entry.warp_cycles[i];
        let compute_time = consts.total_warps * warp_cycles / consts.sm_clock;
        let critical_path = agg.mem_insts * consts.mem_latency_cycles + warp_cycles;
        let latency_time =
            consts.total_warps * critical_path / (warps as f64 * consts.sms_f * consts.clock_hz);
        let exec = compute_time.max(agg.memory_time).max(latency_time);
        let time = exec + consts.launch_overhead;
        if best.is_none_or(|(_, bt)| time < bt) {
            best = Some((i, time));
        }
    }
    let (i, time) = best?;
    // Winner materialization: recompute the bound pieces with the same
    // comparisons the scalar path makes.
    let agg = entry.aggs[entry.candidates[i].use_shared as usize]
        .as_ref()
        .expect("class present");
    let warp_cycles = entry.warp_cycles[i];
    let compute_time = consts.total_warps * warp_cycles / consts.sm_clock;
    let critical_path = agg.mem_insts * consts.mem_latency_cycles + warp_cycles;
    let latency_time = consts.total_warps * critical_path
        / (entry.warps_per_sm[i] as f64 * consts.sms_f * consts.clock_hz);
    let exec = compute_time.max(agg.memory_time).max(latency_time);
    let bound = if exec == compute_time && compute_time >= agg.memory_time {
        ProjectionBound::Compute
    } else if exec == agg.memory_time {
        ProjectionBound::Memory
    } else {
        ProjectionBound::Latency
    };
    Some((
        i,
        Eval {
            time,
            bound,
            occupancy: ModelOccupancy {
                blocks_per_sm: entry.blocks_per_sm[i],
                warps_per_sm: entry.warps_per_sm[i],
            },
            dram_bytes: agg.dram_bytes,
        },
    ))
}

/// The SoA search: [`crate::project::project_best_with`] routes here
/// when `opts.soa` is set. With the memo on, the setup cache supplies
/// precomputed static lanes and only the roofline arithmetic runs; with
/// the memo off, everything is rebuilt in arena scratch and evaluated
/// block-by-block with the (time, index) prune. Parallel evaluation
/// work-steals over candidate blocks; block bests are reduced in index
/// order, so the result is bit-identical to the scalar search at any
/// thread count.
pub(crate) fn project_best_soa(
    name: &str,
    chars: &KernelCharacteristics,
    spec: &GpuSpec,
    opts: SearchOpts,
) -> KernelProjection {
    with_arena(|arena| {
        let memo_key = opts.memo.then(|| CharsKey::of(chars));
        let consts = KernelConsts::of(chars, spec);

        if let Some(chars_key) = memo_key {
            let spec_key = spec_fingerprint(spec);
            let slot = arena
                .cache
                .iter()
                .position(|e| e.chars_key == chars_key && e.spec_key == spec_key)
                .unwrap_or_else(|| {
                    let entry = build_entry(chars, spec, memo_key, chars_key, spec_key, &consts);
                    if arena.cache.len() < SETUP_CACHE_CAP {
                        arena.cache.push(entry);
                        arena.cache.len() - 1
                    } else {
                        let slot = arena.next_evict % SETUP_CACHE_CAP;
                        arena.next_evict = arena.next_evict.wrapping_add(1);
                        arena.cache[slot] = entry;
                        slot
                    }
                });
            let entry = &arena.cache[slot];
            let n = entry.candidates.len();
            let best = if n > BLOCK && gpp_par::configured_threads() > 1 {
                let block_bests =
                    gpp_par::par_map_blocks(n, BLOCK, |r| eval_entry(entry, &consts, r));
                let mut best: Option<(usize, Eval)> = None;
                for cand in block_bests.into_iter().flatten() {
                    if best.is_none_or(|(_, b)| cand.1.time < b.time) {
                        best = Some(cand);
                    }
                }
                best
            } else {
                eval_entry(entry, &consts, 0..n)
            };
            return finish(name, &entry.candidates, best);
        }

        // Memo off: rebuild everything in arena scratch and evaluate with
        // the (time, index) prune — the reference SoA path the proptests
        // hold to the scalar answer.
        candidate_space_into(chars, spec, &mut arena.candidates);
        let fresh_aggs = build_aggs(chars, spec, &arena.candidates, None);
        let SearchArena {
            candidates: scratch,
            lanes,
            ..
        } = &mut *arena;
        let cands: &[Transformation] = scratch;
        let aggs = &fresh_aggs;

        let n = cands.len();
        let nblocks = n.div_ceil(BLOCK);

        let best: Option<(usize, Eval)> = if nblocks > 1 && gpp_par::configured_threads() > 1 {
            let candidates = cands;
            let threshold = Mutex::new(Threshold {
                time: f64::INFINITY,
                idx: usize::MAX,
            });
            let block_bests = gpp_par::par_map_blocks(n, BLOCK, |r| {
                // One threshold snapshot per block: coarser than the
                // scalar per-candidate lock, equally safe (a stale
                // threshold only prunes less, never differently).
                let snap = if opts.prune {
                    let t = threshold.lock().unwrap();
                    Some(Threshold {
                        time: t.time,
                        idx: t.idx,
                    })
                } else {
                    None
                };
                let res = with_arena(|worker| {
                    eval_block(
                        spec,
                        &consts,
                        aggs,
                        &candidates[r.clone()],
                        r.start,
                        &mut worker.lanes,
                        snap.as_ref(),
                    )
                });
                if opts.prune {
                    if let Some((idx, ev)) = res {
                        let mut t = threshold.lock().unwrap();
                        if ev.time < t.time || (ev.time == t.time && idx < t.idx) {
                            *t = Threshold { time: ev.time, idx };
                        }
                    }
                }
                res
            });
            let mut best: Option<(usize, Eval)> = None;
            for cand in block_bests.into_iter().flatten() {
                if best.is_none_or(|(_, b)| cand.1.time < b.time) {
                    best = Some(cand);
                }
            }
            best
        } else {
            let candidates = cands;
            let mut threshold = Threshold {
                time: f64::INFINITY,
                idx: usize::MAX,
            };
            let mut best: Option<(usize, Eval)> = None;
            for b in 0..nblocks {
                let lo = b * BLOCK;
                let hi = (lo + BLOCK).min(n);
                let res = eval_block(
                    spec,
                    &consts,
                    aggs,
                    &candidates[lo..hi],
                    lo,
                    lanes,
                    opts.prune.then_some(&threshold),
                );
                if let Some((idx, ev)) = res {
                    if opts.prune
                        && (ev.time < threshold.time
                            || (ev.time == threshold.time && idx < threshold.idx))
                    {
                        threshold = Threshold { time: ev.time, idx };
                    }
                    if best.is_none_or(|(_, b)| ev.time < b.time) {
                        best = Some((idx, ev));
                    }
                }
            }
            best
        };

        finish(name, cands, best)
    })
}

/// Materializes the winning projection — the only allocation of a
/// steady-state search is the winner's name `String` here.
fn finish(name: &str, cands: &[Transformation], best: Option<(usize, Eval)>) -> KernelProjection {
    let (idx, ev) = best.unwrap_or_else(|| {
        panic!("no runnable transformation for kernel `{name}` — block sizes exhausted")
    });
    KernelProjection {
        name: name.to_string(),
        config: cands[idx],
        time: ev.time,
        bound: ev.bound,
        occupancy: ev.occupancy,
        dram_bytes: ev.dram_bytes,
    }
}
