//! Deterministic data parallelism for the projection engine.
//!
//! Everything CPU-bound in GROPHECY++ — the kernel × axis × transformation
//! search, the evaluation sweeps, intra-request work in `gpp-serve` — runs
//! through [`par_map`]: a work-stealing map over an index range built on
//! `std::thread::scope` workers pulling index-chunked tasks from an atomic
//! cursor. No external crates, no unsafe, no persistent threads.
//!
//! # Determinism
//!
//! `par_map(n, f)` calls `f(i)` for every `i in 0..n` exactly once and
//! returns the results **in index order**, regardless of which worker
//! computed what and in which interleaving. As long as `f` is a pure
//! function of its index, the output is bit-identical to the serial loop
//! `(0..n).map(f).collect()` at any thread count. Callers keep their
//! *reductions* serial and index-ordered (the pool never reduces), so
//! float summation order can never drift between thread counts.
//!
//! # The global token pool
//!
//! One process-wide pool ([`Pool::global`]) owns `threads - 1` helper
//! tokens, where `threads` comes from the `GPP_THREADS` environment
//! variable (default: available parallelism; `1` forces the exact serial
//! code path everywhere). Every `par_map` region acquires as many tokens
//! as it can use and returns them when the region ends:
//!
//! * a lone big region gets every token — one large request saturates the
//!   machine;
//! * concurrent regions (e.g. several `gpp-serve` requests, or a nested
//!   `par_map` inside a task) share the fixed budget, so the process
//!   never oversubscribes the machine no matter how work nests;
//! * the calling thread always participates, so a region that gets zero
//!   tokens degrades to the serial path instead of deadlocking.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Upper bound on the thread count accepted from the environment — a
/// typo guard, not a real limit.
const MAX_THREADS: usize = 1024;

/// Process-wide thread-count override installed by [`set_threads`]
/// (0 = none; fall back to `GPP_THREADS` / available parallelism).
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// The `GPP_THREADS` environment value, read once.
fn env_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| match std::env::var("GPP_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if (1..=MAX_THREADS).contains(&n) => n,
            _ => {
                eprintln!("gpp: ignoring invalid GPP_THREADS={v:?} (want 1..={MAX_THREADS})");
                default_threads()
            }
        },
        Err(_) => default_threads(),
    })
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The effective thread count: [`set_threads`] override, else
/// `GPP_THREADS`, else the machine's available parallelism.
pub fn configured_threads() -> usize {
    match OVERRIDE.load(Ordering::Relaxed) {
        0 => env_threads(),
        n => n,
    }
}

/// Overrides the thread count process-wide (tests, `--threads`).
/// `set_threads(1)` forces the exact serial code path; `set_threads(0)`
/// removes the override. Results are bit-identical at any setting.
pub fn set_threads(n: usize) {
    OVERRIDE.store(n.min(MAX_THREADS), Ordering::Relaxed);
}

/// Utilization counters of the global pool (for `gpp-serve` stats).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// The configured thread count regions size themselves against.
    pub threads: usize,
    /// Workers (helpers + participating callers) running right now.
    pub busy_workers: usize,
    /// Total `f(i)` invocations executed through the pool, ever.
    pub tasks_executed: u64,
    /// Total parallel regions entered (serial fast paths included).
    pub parallel_regions: u64,
}

/// The global token pool. See the module docs for semantics.
pub struct Pool {
    /// Helper tokens currently on loan to running regions.
    outstanding: AtomicUsize,
    busy: AtomicUsize,
    tasks: AtomicU64,
    regions: AtomicU64,
}

impl Pool {
    /// The process-wide pool.
    pub fn global() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        POOL.get_or_init(|| Pool {
            outstanding: AtomicUsize::new(0),
            busy: AtomicUsize::new(0),
            tasks: AtomicU64::new(0),
            regions: AtomicU64::new(0),
        })
    }

    /// A point-in-time copy of the utilization counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            threads: configured_threads(),
            busy_workers: self.busy.load(Ordering::Relaxed),
            tasks_executed: self.tasks.load(Ordering::Relaxed),
            parallel_regions: self.regions.load(Ordering::Relaxed),
        }
    }

    /// Borrows up to `want` helper tokens without blocking; returns the
    /// number granted (possibly 0 — the caller still runs its own work).
    fn acquire_helpers(&self, want: usize) -> usize {
        let budget = configured_threads().saturating_sub(1);
        let mut out = self.outstanding.load(Ordering::Relaxed);
        loop {
            let got = want.min(budget.saturating_sub(out));
            if got == 0 {
                return 0;
            }
            match self.outstanding.compare_exchange_weak(
                out,
                out + got,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return got,
                Err(seen) => out = seen,
            }
        }
    }

    fn release_helpers(&self, n: usize) {
        self.outstanding.fetch_sub(n, Ordering::Relaxed);
    }
}

/// Chunk size for the atomic-cursor queue: small enough that workers
/// steal evenly when task costs vary, large enough that the cursor is
/// not contended for cheap tasks.
fn chunk_size(n: usize, workers: usize) -> usize {
    (n / (workers * 4)).clamp(1, 64)
}

/// Maps `f` over `0..n` in parallel on the global pool and returns the
/// results in index order. Bit-identical to `(0..n).map(f).collect()`
/// for pure `f`, at any thread count — see the module docs.
pub fn par_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let pool = Pool::global();
    pool.regions.fetch_add(1, Ordering::Relaxed);
    if n <= 1 || configured_threads() <= 1 {
        return serial_map(pool, n, &f);
    }
    let helpers = pool.acquire_helpers((n - 1).min(configured_threads() - 1));
    if helpers == 0 {
        return serial_map(pool, n, &f);
    }

    let workers = helpers + 1;
    let cursor = AtomicUsize::new(0);
    let chunk = chunk_size(n, workers);
    let run_worker = |expect: usize| -> Vec<(usize, T)> {
        pool.busy.fetch_add(1, Ordering::Relaxed);
        let mut got: Vec<(usize, T)> = Vec::with_capacity(expect);
        loop {
            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
            if start >= n {
                break;
            }
            for i in start..(start + chunk).min(n) {
                got.push((i, f(i)));
            }
        }
        pool.tasks.fetch_add(got.len() as u64, Ordering::Relaxed);
        pool.busy.fetch_sub(1, Ordering::Relaxed);
        got
    };

    let per_worker = n.div_ceil(workers);
    let mut slots: Vec<Option<T>> = std::iter::repeat_with(|| None).take(n).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..helpers)
            .map(|_| scope.spawn(|| run_worker(per_worker)))
            .collect();
        // The caller is a worker too; placement happens by index, so the
        // interleaving of who computed what cannot affect the output.
        for (i, v) in run_worker(per_worker) {
            slots[i] = Some(v);
        }
        for h in handles {
            for (i, v) in h.join().expect("gpp-par worker panicked") {
                slots[i] = Some(v);
            }
        }
    });
    pool.release_helpers(helpers);
    slots
        .into_iter()
        .map(|s| s.expect("every index computed exactly once"))
        .collect()
}

/// Maps `f` over consecutive index *blocks* of `0..n` in parallel and
/// returns one result per block, in block order. The batch-oriented
/// sibling of [`par_map`]: work-stealing happens at block granularity,
/// so a callee that evaluates a whole block in SoA lanes (the
/// `gpu-model` batch projector) amortizes its per-task overhead over
/// `block` items instead of one. Block `b` covers
/// `b*block .. min((b+1)*block, n)`; every index is covered exactly
/// once. Bit-identical to the serial blocked loop for pure `f`, at any
/// thread count.
pub fn par_map_blocks<T, F>(n: usize, block: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(std::ops::Range<usize>) -> T + Sync,
{
    let block = block.max(1);
    let nblocks = n.div_ceil(block);
    par_map(nblocks, |b| {
        let lo = b * block;
        f(lo..(lo + block).min(n))
    })
}

/// The exact serial code path (`GPP_THREADS=1`): a plain in-order loop.
fn serial_map<T, F: Fn(usize) -> T>(pool: &Pool, n: usize, f: &F) -> Vec<T> {
    pool.busy.fetch_add(1, Ordering::Relaxed);
    let out = (0..n).map(f).collect();
    pool.tasks.fetch_add(n as u64, Ordering::Relaxed);
    pool.busy.fetch_sub(1, Ordering::Relaxed);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order_at_any_thread_count() {
        for threads in [1, 2, 3, 8] {
            set_threads(threads);
            let out = par_map(1000, |i| i * i);
            assert_eq!(out, (0..1000).map(|i| i * i).collect::<Vec<_>>());
        }
        set_threads(0);
    }

    #[test]
    fn float_results_are_bit_identical_to_serial() {
        // A float pipeline whose value depends on nothing but the index.
        let f = |i: usize| ((i as f64) * 1.000000007).sin() / (i as f64 + 0.1);
        let serial: Vec<f64> = (0..777).map(f).collect();
        for threads in [2, 5, 16] {
            set_threads(threads);
            let par = par_map(777, f);
            assert!(serial
                .iter()
                .zip(&par)
                .all(|(a, b)| a.to_bits() == b.to_bits()));
        }
        set_threads(0);
    }

    #[test]
    fn nested_regions_share_the_budget_and_complete() {
        set_threads(4);
        let out = par_map(16, |i| {
            par_map(16, move |j| i * 16 + j).iter().sum::<usize>()
        });
        let expect: Vec<usize> = (0..16).map(|i| (0..16).map(|j| i * 16 + j).sum()).collect();
        assert_eq!(out, expect);
        set_threads(0);
    }

    #[test]
    fn blocks_cover_the_range_in_order_at_any_thread_count() {
        for threads in [1, 2, 8] {
            set_threads(threads);
            for (n, block) in [(0, 4), (1, 4), (16, 4), (17, 4), (36, 16), (5, 100)] {
                let ranges = par_map_blocks(n, block, |r| r);
                let flat: Vec<usize> = ranges.iter().cloned().flatten().collect();
                assert_eq!(flat, (0..n).collect::<Vec<_>>(), "n={n} block={block}");
                assert!(ranges.iter().all(|r| r.len() <= block && !r.is_empty()));
            }
        }
        set_threads(0);
    }

    #[test]
    fn block_results_match_serial_blocked_loop() {
        let f = |r: std::ops::Range<usize>| r.map(|i| (i as f64).sqrt()).sum::<f64>();
        let serial: Vec<f64> = (0..10).map(|b| f(b * 7..((b + 1) * 7).min(70))).collect();
        for threads in [2, 5] {
            set_threads(threads);
            let par = par_map_blocks(70, 7, f);
            assert!(serial
                .iter()
                .zip(&par)
                .all(|(a, b)| a.to_bits() == b.to_bits()));
        }
        set_threads(0);
    }

    #[test]
    fn zero_block_size_is_clamped() {
        assert_eq!(par_map_blocks(3, 0, |r| r.len()), vec![1, 1, 1]);
    }

    #[test]
    fn empty_and_single_inputs() {
        assert_eq!(par_map(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map(1, |i| i + 41), vec![41]);
    }

    #[test]
    fn pool_counts_tasks() {
        let before = Pool::global().stats().tasks_executed;
        let _ = par_map(100, |i| i);
        let after = Pool::global().stats().tasks_executed;
        assert!(after >= before + 100);
        assert!(Pool::global().stats().threads >= 1);
    }

    #[test]
    fn chunking_covers_the_range() {
        for (n, w) in [(1, 1), (7, 3), (64, 2), (10_000, 8)] {
            let c = chunk_size(n, w);
            assert!((1..=64).contains(&c));
        }
    }
}
