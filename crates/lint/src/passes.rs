//! The analysis passes behind `gpp lint`.
//!
//! All passes share one precomputed view of the program: every array
//! reference with its clamped section (via
//! [`gpp_skeleton::sections::ref_section`]), in program order. On top of
//! that they run:
//!
//! * **interval analysis** of affine indices against array extents
//!   (GPP001),
//! * **liveness** over the kernel sequence — uninitialized temporary
//!   reads (GPP002), dead writes (GPP003), unused arrays (GPP004),
//! * a **race detector** over parallel loop nests (GPP005),
//! * **transfer-plan lints** layered on `gpp_datausage` — redundant
//!   host-to-device traffic (GPP006) and missing `temporary` hints
//!   (GPP007), and
//! * **coalescing notes** from the synthesized kernel characteristics
//!   (GPP008).
//!
//! Structurally invalid programs (failed [`gpp_skeleton::validate`])
//! yield only GPP000 diagnostics: the dataflow passes assume a
//! well-formed program.

use crate::diag::{Code, Diagnostic, Severity};
use gpp_brs::{AccessKind, ArrayId, Section, SectionSet};
use gpp_datausage::plan::human_bytes;
use gpp_datausage::{device_resident_arrays, Hints};
use gpp_skeleton::expr::LoopId;
use gpp_skeleton::sections::ref_section;
use gpp_skeleton::{ArrayRef, CoalesceClass, IndexExpr, Program, SourceMap, Span, ValidationError};
use std::collections::{BTreeMap, BTreeSet};

/// Runs every pass over `program` and returns raw (unconfigured)
/// diagnostics. Pass the [`SourceMap`] from
/// [`gpp_skeleton::text::parse_with_spans`] to anchor findings to `.gsk`
/// source; API-built programs pass `None` and get `Span::none()`.
///
/// `hints` should normally start from [`Hints::for_program`] so arrays
/// declared `temporary` in the skeleton are honored.
pub fn lint_program(program: &Program, map: Option<&SourceMap>, hints: &Hints) -> Vec<Diagnostic> {
    if let Err(errs) = gpp_skeleton::validate::validate(program) {
        return errs
            .iter()
            .map(|e| structural_diag(program, map, e))
            .collect();
    }
    let ctx = Ctx::new(program, map, hints);
    let mut diags = Vec::new();
    ctx.out_of_bounds(&mut diags); // GPP001
    ctx.liveness(&mut diags); // GPP002 + GPP006
    ctx.dead_writes(&mut diags); // GPP003
    ctx.unused_arrays(&mut diags); // GPP004
    ctx.races(&mut diags); // GPP005
    ctx.temporary_hints(&mut diags); // GPP007
    ctx.coalescing(&mut diags); // GPP008
    crate::program::transfer_dataflow(program, map, &mut diags); // GPP010–GPP013
    diags
}

/// One array reference with its precomputed section.
struct Site<'a> {
    /// Statement index within the kernel.
    si: usize,
    /// Reference index within the statement.
    ri: usize,
    r: &'a ArrayRef,
    section: Section,
    /// False if `section` over-approximates (irregular index or sparse
    /// array).
    exact: bool,
    /// True if the statement executes unconditionally
    /// (`active_fraction >= 1`), so its writes are guaranteed to cover
    /// their section.
    full: bool,
}

struct Ctx<'a> {
    p: &'a Program,
    map: Option<&'a SourceMap>,
    hints: &'a Hints,
    /// Per-kernel loop trip counts.
    trips: Vec<Vec<u64>>,
    /// Per-kernel reference sites in program order.
    sites: Vec<Vec<Site<'a>>>,
}

impl<'a> Ctx<'a> {
    fn new(p: &'a Program, map: Option<&'a SourceMap>, hints: &'a Hints) -> Ctx<'a> {
        let trips: Vec<Vec<u64>> = p
            .kernels
            .iter()
            .map(|k| k.loops.iter().map(|l| l.trip).collect())
            .collect();
        let sites = p
            .kernels
            .iter()
            .enumerate()
            .map(|(ki, k)| {
                let mut v = Vec::new();
                for (si, stmt) in k.statements.iter().enumerate() {
                    for (ri, r) in stmt.refs.iter().enumerate() {
                        let (section, exact) = ref_section(r, p.array(r.array), &trips[ki]);
                        v.push(Site {
                            si,
                            ri,
                            r,
                            section,
                            exact,
                            full: stmt.active_fraction >= 1.0,
                        });
                    }
                }
                v
            })
            .collect();
        Ctx {
            p,
            map,
            hints,
            trips,
            sites,
        }
    }

    fn ref_span(&self, ki: usize, si: usize, ri: usize) -> Span {
        self.map.map(|m| m.ref_span(ki, si, ri)).unwrap_or_default()
    }

    fn array_span(&self, id: ArrayId) -> Span {
        self.map.map(|m| m.array_span(id)).unwrap_or_default()
    }

    /// Temporary via hint *or* `.gsk` declaration.
    fn is_temp(&self, id: ArrayId) -> bool {
        self.hints.is_temporary(id) || self.p.array(id).temporary
    }

    /// GPP001: affine index ranges checked against extents. The section
    /// machinery deliberately clamps (guarded-stencil convention), so
    /// this is the only place out-of-bounds lattice points surface.
    fn out_of_bounds(&self, diags: &mut Vec<Diagnostic>) {
        for (ki, sites) in self.sites.iter().enumerate() {
            for s in sites {
                let decl = self.p.array(s.r.array);
                if decl.sparse {
                    continue; // data-dependent contents; extents are capacity
                }
                for (d, ix) in s.r.index.iter().enumerate() {
                    let IndexExpr::Affine(e) = ix else { continue };
                    let (lo, hi) = e.bounds(&self.trips[ki]);
                    let extent = decl.extents[d] as i64;
                    if lo < 0 || hi >= extent {
                        diags.push(Diagnostic::new(
                            Code::OutOfBounds,
                            self.ref_span(ki, s.si, s.ri),
                            format!(
                                "out-of-bounds access to `{}`: dimension {} spans \
                                 {}..={}, but valid indices are 0..={}",
                                decl.name,
                                d,
                                lo,
                                hi,
                                extent - 1
                            ),
                        ));
                    }
                }
            }
        }
    }

    /// GPP002 + GPP006: one forward walk over the kernel sequence,
    /// tracking which sections have been written by *prior kernels* and
    /// by *earlier statements of the current kernel* separately — the
    /// transfer analysis (`gpp_datausage::analyze`) only subtracts the
    /// former, which is exactly what GPP006 reports.
    fn liveness(&self, diags: &mut Vec<Diagnostic>) {
        let mut prior: BTreeMap<ArrayId, SectionSet> = BTreeMap::new();
        for (ki, k) in self.p.kernels.iter().enumerate() {
            let mut cur: BTreeMap<ArrayId, SectionSet> = BTreeMap::new();
            for si in 0..k.statements.len() {
                let sites: Vec<&Site> = self.sites[ki].iter().filter(|s| s.si == si).collect();
                // Reads observe writes of *earlier* statements only.
                for s in sites.iter().filter(|s| s.r.kind == AccessKind::Read) {
                    let a = s.r.array;
                    let decl = self.p.array(a);
                    let nd = decl.ndims();
                    let empty = SectionSet::empty(nd);
                    let pset = prior.get(&a).unwrap_or(&empty);
                    let cset = cur.get(&a).unwrap_or(&empty);
                    if self.is_temp(a) {
                        let mut written = pset.clone();
                        written.union_with(cset);
                        if !written.covers(&s.section) {
                            diags.push(Diagnostic::new(
                                Code::UninitializedRead,
                                self.ref_span(ki, s.si, s.ri),
                                format!(
                                    "temporary `{}` is read before it is fully \
                                     written — temporaries get no host-to-device \
                                     copy, so this reads undefined device memory",
                                    decl.name
                                ),
                            ));
                        }
                    } else if s.exact {
                        let mut need = SectionSet::from_section(s.section.clone());
                        need.subtract(pset);
                        if !need.is_empty() {
                            let mut rest = need.clone();
                            rest.subtract(cset);
                            if rest.is_empty() {
                                diags.push(Diagnostic::new(
                                    Code::RedundantH2d,
                                    self.ref_span(ki, s.si, s.ri),
                                    format!(
                                        "`{}` is produced earlier in kernel `{}`, \
                                         yet the per-kernel transfer analysis still \
                                         schedules {} of host-to-device traffic for \
                                         this read; hoist the producer into its own \
                                         kernel to keep the data device-resident",
                                        decl.name,
                                        k.name,
                                        human_bytes(need.byte_count(decl.elem.bytes())),
                                    ),
                                ));
                            }
                        }
                    }
                }
                // Then record this statement's guaranteed writes.
                for s in sites
                    .iter()
                    .filter(|s| s.r.kind == AccessKind::Write && s.exact && s.full)
                {
                    cur.entry(s.r.array)
                        .or_insert_with(|| SectionSet::empty(s.section.ndims()))
                        .insert(s.section.clone());
                }
            }
            for (a, set) in cur {
                prior
                    .entry(a)
                    .or_insert_with(|| SectionSet::empty(set.ndims()))
                    .union_with(&set);
            }
        }
    }

    /// GPP003: a write is dead if its section is fully overwritten before
    /// any later read observes it — or, for a temporary (which is never
    /// copied back to the host), if nothing ever reads it at all.
    fn dead_writes(&self, diags: &mut Vec<Diagnostic>) {
        for (ki, sites) in self.sites.iter().enumerate() {
            for w in sites
                .iter()
                .filter(|s| s.r.kind == AccessKind::Write && s.exact && s.full)
            {
                let a = w.r.array;
                let decl = self.p.array(a);
                // Self-accumulation (`x[i] = x[i] + …`, possibly under a
                // serial loop) keeps the write live: the same statement
                // re-reads it on the next iteration.
                let accumulates = sites.iter().any(|s| {
                    s.si == w.si
                        && s.r.kind == AccessKind::Read
                        && s.r.array == a
                        && s.section.overlaps(&w.section)
                });
                if accumulates {
                    continue;
                }
                let mut remaining = SectionSet::from_section(w.section.clone());
                let mut verdict = None; // None = scan ran to program end
                'scan: for kj in ki..self.p.kernels.len() {
                    for s in &self.sites[kj] {
                        if (kj == ki && s.si <= w.si) || s.r.array != a {
                            continue;
                        }
                        if s.r.kind == AccessKind::Read {
                            let touches = if s.exact {
                                remaining.overlaps(&s.section)
                            } else {
                                !remaining.is_empty()
                            };
                            if touches {
                                verdict = Some(true); // live
                                break 'scan;
                            }
                        } else if s.exact && s.full {
                            remaining.subtract_section(&s.section);
                            if remaining.is_empty() {
                                verdict = Some(false); // overwritten
                                break 'scan;
                            }
                        }
                    }
                }
                match verdict {
                    Some(true) => {}
                    Some(false) => diags.push(Diagnostic::new(
                        Code::DeadWrite,
                        self.ref_span(ki, w.si, w.ri),
                        format!(
                            "dead write to `{}`: every element is overwritten \
                             before it is ever read",
                            decl.name
                        ),
                    )),
                    // Never read and never fully overwritten: live for
                    // host outputs (the final D2H copy observes it), dead
                    // for temporaries.
                    None if self.is_temp(a) => diags.push(Diagnostic::new(
                        Code::DeadWrite,
                        self.ref_span(ki, w.si, w.ri),
                        format!(
                            "write to temporary `{}` is never read — its \
                             traffic is wasted",
                            decl.name
                        ),
                    )),
                    None => {}
                }
            }
        }
    }

    /// GPP004: declared, never referenced.
    fn unused_arrays(&self, diags: &mut Vec<Diagnostic>) {
        let used: BTreeSet<ArrayId> = self.sites.iter().flatten().map(|s| s.r.array).collect();
        for a in &self.p.arrays {
            if !used.contains(&a.id) {
                diags.push(Diagnostic::new(
                    Code::UnusedArray,
                    self.array_span(a.id),
                    format!("array `{}` is declared but never referenced", a.name),
                ));
            }
        }
    }

    /// GPP005: write-write and read-write conflicts between distinct
    /// iterations of a parallel loop.
    ///
    /// Writes are linearized row-major; a parallel loop whose linear
    /// coefficient is zero makes every one of its iterations store to
    /// the same elements — a *definite* race (error). Otherwise a
    /// positional-number argument proves injectivity: with coefficients
    /// sorted by magnitude, each must exceed the largest offset the
    /// smaller ones (plus all serial loops) can accumulate; failing that
    /// the map *may* collide (warning).
    fn races(&self, diags: &mut Vec<Diagnostic>) {
        for (ki, k) in self.p.kernels.iter().enumerate() {
            let par: Vec<(usize, &gpp_skeleton::Loop)> = k
                .loops
                .iter()
                .enumerate()
                .filter(|(_, l)| l.parallel && l.trip > 1)
                .collect();
            if par.is_empty() {
                continue; // single-iteration nest cannot race
            }
            for w in self.sites[ki]
                .iter()
                .filter(|s| s.r.kind == AccessKind::Write)
            {
                let decl = self.p.array(w.r.array);
                if decl.sparse {
                    continue; // contents and index sets are data-dependent
                }
                let span = self.ref_span(ki, w.si, w.ri);
                if w.r.is_irregular() {
                    diags.push(Diagnostic::new(
                        Code::ParallelRace,
                        span,
                        format!(
                            "data-dependent write to `{}` under a parallel loop \
                             nest — distinct iterations cannot be proven to \
                             write distinct elements",
                            decl.name
                        ),
                    ));
                    continue;
                }
                let lin = |lid: LoopId| -> i128 {
                    w.r.index
                        .iter()
                        .enumerate()
                        .map(|(d, ix)| {
                            let row_stride: i128 =
                                decl.extents[d + 1..].iter().map(|&e| e as i128).product();
                            match ix {
                                IndexExpr::Affine(e) => e.coeff(lid) as i128 * row_stride,
                                _ => 0,
                            }
                        })
                        .sum()
                };
                if let Some((_, l)) = par.iter().find(|(li, _)| lin(LoopId(*li as u32)) == 0) {
                    diags.push(Diagnostic::with_severity(
                        Code::ParallelRace,
                        Severity::Error,
                        span,
                        format!(
                            "write-write race on `{}`: the index does not vary \
                             with parallel loop `{}`, so all {} of its \
                             iterations store to the same elements",
                            decl.name, l.name, l.trip
                        ),
                    ));
                    continue;
                }
                let serial_slack: i128 = k
                    .loops
                    .iter()
                    .enumerate()
                    .filter(|(_, l)| !l.parallel && l.trip > 1)
                    .map(|(li, l)| lin(LoopId(li as u32)).abs() * (l.trip as i128 - 1))
                    .sum();
                let mut coeffs: Vec<(i128, u64)> = par
                    .iter()
                    .map(|(li, l)| (lin(LoopId(*li as u32)).abs(), l.trip))
                    .collect();
                coeffs.sort_unstable();
                let mut reach = serial_slack;
                for (c, trip) in coeffs {
                    if c <= reach {
                        diags.push(Diagnostic::new(
                            Code::ParallelRace,
                            span,
                            format!(
                                "writes to `{}` may collide: distinct parallel \
                                 iterations can map to the same element \
                                 (non-injective index)",
                                decl.name
                            ),
                        ));
                        break;
                    }
                    reach += c * (trip as i128 - 1);
                }
            }
            // Read-write conflicts: a read whose section overlaps a
            // concurrent write through a *different* index pattern sees
            // either old or new values depending on thread order.
            let mut flagged: BTreeSet<ArrayId> = BTreeSet::new();
            for r in self.sites[ki]
                .iter()
                .filter(|s| s.r.kind == AccessKind::Read)
            {
                let a = r.r.array;
                if flagged.contains(&a) || self.p.array(a).sparse {
                    continue;
                }
                let conflicting = self.sites[ki].iter().any(|w| {
                    w.r.kind == AccessKind::Write
                        && w.r.array == a
                        && !w.r.is_irregular()
                        && w.r.index != r.r.index
                        && if r.exact {
                            w.section.overlaps(&r.section)
                        } else {
                            !w.section.is_empty()
                        }
                });
                if conflicting {
                    flagged.insert(a);
                    diags.push(Diagnostic::new(
                        Code::ParallelRace,
                        self.ref_span(ki, r.si, r.ri),
                        format!(
                            "kernel `{}` reads `{}` at indices that overlap \
                             elements concurrently written by other parallel \
                             iterations — the value observed depends on thread \
                             order (double-buffer the array to fix)",
                            k.name,
                            self.p.array(a).name
                        ),
                    ));
                }
            }
        }
    }

    /// GPP007: an array whose first access writes it and whose last
    /// access reads it lives entirely on the device, yet without a
    /// `temporary` hint the analyzer still copies it back.
    fn temporary_hints(&self, diags: &mut Vec<Diagnostic>) {
        let mut first: BTreeMap<ArrayId, AccessKind> = BTreeMap::new();
        let mut last: BTreeMap<ArrayId, AccessKind> = BTreeMap::new();
        for s in self.sites.iter().flatten() {
            first.entry(s.r.array).or_insert(s.r.kind);
            last.insert(s.r.array, s.r.kind);
        }
        for a in device_resident_arrays(self.p) {
            if self.is_temp(a)
                || first.get(&a) != Some(&AccessKind::Write)
                || last.get(&a) != Some(&AccessKind::Read)
            {
                continue;
            }
            let decl = self.p.array(a);
            let bytes = decl.extents.iter().product::<usize>() as u64 * decl.elem.bytes() as u64;
            let span = self.array_span(a);
            let mut d = Diagnostic::new(
                Code::MissingTemporary,
                span,
                format!(
                    "`{}` is produced and last consumed on the device but is \
                     not declared `temporary`; marking it would drop {} of \
                     device-to-host traffic",
                    decl.name,
                    human_bytes(bytes)
                ),
            );
            if span.is_real() {
                d = d.with_fix(crate::fixit::FixIt::new(
                    format!("declare `{}` temporary", decl.name),
                    vec![crate::fixit::Edit::Append {
                        line: span.line,
                        text: " temporary".into(),
                    }],
                ));
            }
            diags.push(d);
        }
    }

    /// GPP008: coalescing notes from the synthesized characteristics,
    /// using the default thread axis (the innermost parallel loop).
    fn coalescing(&self, diags: &mut Vec<Diagnostic>) {
        for (ki, k) in self.p.kernels.iter().enumerate() {
            let ch = k.characteristics(self.p);
            // `accesses` is 1:1 with refs in statement order.
            let mut n = 0usize;
            for (si, stmt) in k.statements.iter().enumerate() {
                for (ri, r) in stmt.refs.iter().enumerate() {
                    let acc = &ch.accesses[n];
                    n += 1;
                    let decl = self.p.array(r.array);
                    if decl.sparse {
                        continue; // layout is a property of the format
                    }
                    let span = self.ref_span(ki, si, ri);
                    match acc.class {
                        CoalesceClass::Strided(s) if s >= 16 => {
                            diags.push(Diagnostic::new(
                                Code::Uncoalesced,
                                span,
                                format!(
                                    "stride-{} access to `{}`: consecutive \
                                     threads touch elements {} apart, \
                                     fragmenting each half-warp into {} \
                                     transactions — interchange loops so the \
                                     thread axis sweeps the contiguous dimension",
                                    s,
                                    decl.name,
                                    s,
                                    s.min(16)
                                ),
                            ));
                        }
                        CoalesceClass::Irregular => {
                            diags.push(Diagnostic::new(
                                Code::Uncoalesced,
                                span,
                                format!(
                                    "data-dependent index into `{}` scatters each \
                                     half-warp into 16 separate transactions",
                                    decl.name
                                ),
                            ));
                        }
                        _ => {}
                    }
                }
            }
        }
    }
}

/// Maps one [`ValidationError`] to a GPP000 diagnostic with a
/// best-effort span (the offending array, loop, kernel, or reference).
fn structural_diag(p: &Program, map: Option<&SourceMap>, e: &ValidationError) -> Diagnostic {
    let span = map.map(|m| structural_span(p, m, e)).unwrap_or_default();
    Diagnostic::new(Code::Structural, span, e.to_string())
}

fn structural_span(p: &Program, m: &SourceMap, e: &ValidationError) -> Span {
    let kernel_index = |name: &str| p.kernels.iter().position(|k| k.name == name);
    let ref_span_where = |kname: &str, pred: &dyn Fn(&ArrayRef) -> bool| -> Span {
        let Some(ki) = kernel_index(kname) else {
            return Span::none();
        };
        for (si, stmt) in p.kernels[ki].statements.iter().enumerate() {
            for (ri, r) in stmt.refs.iter().enumerate() {
                if pred(r) {
                    return m.ref_span(ki, si, ri);
                }
            }
        }
        m.kernel_span(ki)
    };
    match e {
        ValidationError::ZeroExtent { array } => p
            .array_by_name(array)
            .map(|a| m.array_span(a.id))
            .unwrap_or_default(),
        ValidationError::EmptyLoopNest { kernel } | ValidationError::NoParallelism { kernel } => {
            kernel_index(kernel)
                .map(|ki| m.kernel_span(ki))
                .unwrap_or_default()
        }
        ValidationError::ZeroTrip { kernel, loop_name } => kernel_index(kernel)
            .and_then(|ki| {
                let li = p.kernels[ki]
                    .loops
                    .iter()
                    .position(|l| &l.name == loop_name)?;
                m.kernels.get(ki)?.loops.get(li).copied()
            })
            .unwrap_or_default(),
        ValidationError::UnknownArray { kernel, array } => {
            ref_span_where(kernel, &|r: &ArrayRef| r.array.0 == *array)
        }
        ValidationError::DimMismatch {
            kernel,
            array,
            expected,
            ..
        } => ref_span_where(kernel, &|r: &ArrayRef| {
            p.arrays
                .iter()
                .any(|a| a.id == r.array && &a.name == array && r.index.len() != *expected)
        }),
        ValidationError::UnknownLoop { kernel, loop_id } => {
            ref_span_where(kernel, &|r: &ArrayRef| {
                r.index.iter().any(|ix| match ix {
                    IndexExpr::Affine(e) => e.coeff(LoopId(*loop_id)) != 0,
                    _ => false,
                })
            })
        }
        ValidationError::ZeroChunks { array } => p
            .transfers
            .iter()
            .position(|t| t.chunks == 0 && p.array(t.array).name == *array)
            .map(|i| m.transfer_span(i))
            .unwrap_or_default(),
        ValidationError::TransferOrder { array, pos, .. } => p
            .transfers
            .iter()
            .position(|t| t.pos == *pos && p.array(t.array).name == *array)
            .map(|i| m.transfer_span(i))
            .unwrap_or_default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpp_skeleton::builder::{cst, idx, irr, ProgramBuilder};
    use gpp_skeleton::{ElemType, Flops};

    fn codes(diags: &[Diagnostic]) -> Vec<Code> {
        let mut v: Vec<Code> = diags.iter().map(|d| d.code).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    fn lint(p: &Program) -> Vec<Diagnostic> {
        lint_program(p, None, &Hints::for_program(p))
    }

    #[test]
    fn clean_program_has_no_diagnostics() {
        let mut p = ProgramBuilder::new("clean");
        let a = p.array("a", ElemType::F32, &[1024]);
        let b = p.array("b", ElemType::F32, &[1024]);
        let mut k = p.kernel("k");
        let i = k.parallel_loop("i", 1024);
        k.statement()
            .read(a, &[idx(i)])
            .write(b, &[idx(i)])
            .flops(Flops {
                adds: 1,
                ..Flops::default()
            })
            .finish();
        k.finish();
        let p = p.build().unwrap();
        assert_eq!(lint(&p), vec![]);
    }

    #[test]
    fn oob_read_is_an_error() {
        let mut p = ProgramBuilder::new("oob");
        let a = p.array("a", ElemType::F32, &[64]);
        let b = p.array("b", ElemType::F32, &[64]);
        let mut k = p.kernel("k");
        let i = k.parallel_loop("i", 64);
        k.statement()
            .read(a, &[idx(i) + 1])
            .write(b, &[idx(i)])
            .finish();
        k.finish();
        let p = p.build().unwrap();
        let d = lint(&p);
        assert_eq!(codes(&d), vec![Code::OutOfBounds]);
        assert_eq!(d[0].severity, Severity::Error);
        assert!(d[0].message.contains("1..=64"), "{}", d[0].message);
    }

    #[test]
    fn negative_index_is_oob() {
        let mut p = ProgramBuilder::new("neg");
        let a = p.array("a", ElemType::F32, &[64]);
        let b = p.array("b", ElemType::F32, &[64]);
        let mut k = p.kernel("k");
        let i = k.parallel_loop("i", 64);
        k.statement()
            .read(a, &[idx(i) - 1])
            .write(b, &[idx(i)])
            .finish();
        k.finish();
        let p = p.build().unwrap();
        assert_eq!(codes(&lint(&p)), vec![Code::OutOfBounds]);
    }

    #[test]
    fn uninitialized_temporary_read_warns() {
        let mut p = ProgramBuilder::new("uninit");
        let a = p.array("a", ElemType::F32, &[64]);
        let t = p.temporary_array("scratch", ElemType::F32, &[64]);
        let mut k = p.kernel("k");
        let i = k.parallel_loop("i", 64);
        k.statement()
            .read(t, &[idx(i)])
            .write(a, &[idx(i)])
            .finish();
        k.statement()
            .read(a, &[idx(i)])
            .write(t, &[idx(i)])
            .finish();
        k.finish();
        let p = p.build().unwrap();
        let d = lint(&p);
        assert!(d.iter().any(|d| d.code == Code::UninitializedRead), "{d:?}");
    }

    #[test]
    fn temporary_written_then_read_is_clean() {
        let mut p = ProgramBuilder::new("ok-temp");
        let a = p.array("a", ElemType::F32, &[64]);
        let t = p.temporary_array("scratch", ElemType::F32, &[64]);
        let mut k1 = p.kernel("produce");
        let i = k1.parallel_loop("i", 64);
        k1.statement()
            .read(a, &[idx(i)])
            .write(t, &[idx(i)])
            .finish();
        k1.finish();
        let mut k2 = p.kernel("consume");
        let i = k2.parallel_loop("i", 64);
        k2.statement()
            .read(t, &[idx(i)])
            .write(a, &[idx(i)])
            .finish();
        k2.finish();
        let p = p.build().unwrap();
        assert_eq!(lint(&p), vec![]);
    }

    #[test]
    fn overwritten_before_read_is_dead() {
        let mut p = ProgramBuilder::new("dead");
        let a = p.array("a", ElemType::F32, &[64]);
        let x = p.array("x", ElemType::F32, &[64]);
        let mut k1 = p.kernel("first");
        let i = k1.parallel_loop("i", 64);
        k1.statement()
            .read(a, &[idx(i)])
            .write(x, &[idx(i)])
            .finish();
        k1.finish();
        let mut k2 = p.kernel("second");
        let i = k2.parallel_loop("i", 64);
        k2.statement()
            .read(a, &[idx(i)])
            .write(x, &[idx(i)])
            .finish();
        k2.finish();
        let p = p.build().unwrap();
        let d = lint(&p);
        assert_eq!(codes(&d), vec![Code::DeadWrite]);
        assert!(d[0].message.contains("overwritten"));
    }

    #[test]
    fn accumulation_is_not_dead() {
        // x[i] = x[i] + a[i,t] under a serial loop: classic reduction.
        let mut p = ProgramBuilder::new("acc");
        let a = p.array("a", ElemType::F32, &[64, 8]);
        let x = p.array("x", ElemType::F32, &[64]);
        let mut k = p.kernel("k");
        let i = k.parallel_loop("i", 64);
        let t = k.serial_loop("t", 8);
        k.statement()
            .read(x, &[idx(i)])
            .read(a, &[idx(i), idx(t)])
            .write(x, &[idx(i)])
            .finish();
        k.finish();
        let p = p.build().unwrap();
        assert!(!lint(&p).iter().any(|d| d.code == Code::DeadWrite));
    }

    #[test]
    fn unused_array_warns() {
        let mut p = ProgramBuilder::new("unused");
        let a = p.array("a", ElemType::F32, &[64]);
        let b = p.array("b", ElemType::F32, &[64]);
        let _ghost = p.array("ghost", ElemType::F64, &[128]);
        let mut k = p.kernel("k");
        let i = k.parallel_loop("i", 64);
        k.statement()
            .read(a, &[idx(i)])
            .write(b, &[idx(i)])
            .finish();
        k.finish();
        let p = p.build().unwrap();
        let d = lint(&p);
        assert_eq!(codes(&d), vec![Code::UnusedArray]);
        assert!(d[0].message.contains("ghost"));
    }

    #[test]
    fn thread_invariant_write_is_definite_race() {
        let mut p = ProgramBuilder::new("race");
        let a = p.array("a", ElemType::F32, &[64]);
        let y = p.array("y", ElemType::F32, &[4]);
        let mut k = p.kernel("k");
        let i = k.parallel_loop("i", 64);
        k.statement()
            .read(a, &[idx(i)])
            .write(y, &[cst(0)])
            .finish();
        k.finish();
        let p = p.build().unwrap();
        let d = lint(&p);
        assert_eq!(codes(&d), vec![Code::ParallelRace]);
        assert_eq!(d[0].severity, Severity::Error);
    }

    #[test]
    fn folding_write_is_possible_race() {
        // a[i + k] with i parallel (trip 10) and k serial (trip 5):
        // threads 1 apart collide through serial offsets.
        let mut p = ProgramBuilder::new("fold");
        let a = p.array("a", ElemType::F32, &[32]);
        let b = p.array("b", ElemType::F32, &[32]);
        let mut k = p.kernel("k");
        let i = k.parallel_loop("i", 10);
        let s = k.serial_loop("s", 5);
        k.statement()
            .read(b, &[idx(i)])
            .write(a, &[idx(i) + idx(s)])
            .finish();
        k.finish();
        let p = p.build().unwrap();
        let d = lint(&p);
        let race: Vec<_> = d.iter().filter(|d| d.code == Code::ParallelRace).collect();
        assert_eq!(race.len(), 1, "{d:?}");
        assert_eq!(race[0].severity, Severity::Warning);
        assert!(race[0].message.contains("collide"));
    }

    #[test]
    fn stencil_read_write_overlap_is_race() {
        // In-place stencil: reads img[i] and img[i+2] while writing
        // img[i+1] in the same parallel nest.
        let mut p = ProgramBuilder::new("inplace");
        let img = p.array("img", ElemType::F32, &[64]);
        let mut k = p.kernel("k");
        let i = k.parallel_loop("i", 62);
        k.statement()
            .read(img, &[idx(i)])
            .read(img, &[idx(i) + 2])
            .write(img, &[idx(i) + 1])
            .finish();
        k.finish();
        let p = p.build().unwrap();
        let d = lint(&p);
        let race: Vec<_> = d.iter().filter(|d| d.code == Code::ParallelRace).collect();
        assert_eq!(race.len(), 1, "one warning per (kernel, array): {d:?}");
        assert_eq!(race[0].severity, Severity::Warning);
    }

    #[test]
    fn double_buffered_stencil_has_no_race() {
        let mut p = ProgramBuilder::new("buffered");
        let a = p.array("in", ElemType::F32, &[64]);
        let b = p.array("out", ElemType::F32, &[64]);
        let mut k = p.kernel("k");
        let i = k.parallel_loop("i", 62);
        k.statement()
            .read(a, &[idx(i)])
            .read(a, &[idx(i) + 2])
            .write(b, &[idx(i) + 1])
            .finish();
        k.finish();
        let p = p.build().unwrap();
        assert!(!lint(&p).iter().any(|d| d.code == Code::ParallelRace));
    }

    #[test]
    fn same_kernel_producer_is_redundant_h2d() {
        let mut p = ProgramBuilder::new("redundant");
        let a = p.array("a", ElemType::F32, &[64]);
        let tmp = p.array("tmp", ElemType::F32, &[64]);
        let b = p.array("b", ElemType::F32, &[64]);
        let mut k = p.kernel("k");
        let i = k.parallel_loop("i", 64);
        k.statement()
            .read(a, &[idx(i)])
            .write(tmp, &[idx(i)])
            .finish();
        k.statement()
            .read(tmp, &[idx(i)])
            .write(b, &[idx(i)])
            .finish();
        k.finish();
        let p = p.build().unwrap();
        let d = lint(&p);
        assert!(d.iter().any(|d| d.code == Code::RedundantH2d), "{d:?}");
    }

    #[test]
    fn device_intermediate_without_hint_warns() {
        let mut p = ProgramBuilder::new("hint");
        let img = p.array("img", ElemType::F32, &[256]);
        let coeff = p.array("coeff", ElemType::F32, &[256]);
        let mut k1 = p.kernel("prep");
        let i = k1.parallel_loop("i", 256);
        k1.statement()
            .read(img, &[idx(i)])
            .write(coeff, &[idx(i)])
            .finish();
        k1.finish();
        let mut k2 = p.kernel("update");
        let i = k2.parallel_loop("i", 256);
        k2.statement()
            .read(coeff, &[idx(i)])
            .read(img, &[idx(i)])
            .write(img, &[idx(i)])
            .finish();
        k2.finish();
        let p = p.build().unwrap();
        let d = lint(&p);
        let hint: Vec<_> = d
            .iter()
            .filter(|d| d.code == Code::MissingTemporary)
            .collect();
        assert_eq!(hint.len(), 1, "{d:?}");
        assert!(hint[0].message.contains("coeff"));
        assert!(hint[0].message.contains("1024 B"), "{}", hint[0].message);
        // With the hint supplied, the warning disappears.
        let coeff_id = p.array_by_name("coeff").unwrap().id;
        let hinted = Hints::new().temporary(coeff_id);
        let d2 = lint_program(&p, None, &hinted);
        assert!(!d2.iter().any(|d| d.code == Code::MissingTemporary));
    }

    #[test]
    fn row_major_transpose_access_is_noted() {
        let mut p = ProgramBuilder::new("stride");
        let m = p.array("m", ElemType::F32, &[128, 128]);
        let v = p.array("v", ElemType::F32, &[128]);
        let mut k = p.kernel("k");
        let i = k.parallel_loop("i", 128);
        k.statement()
            .read(m, &[idx(i), cst(0)])
            .write(v, &[idx(i)])
            .finish();
        k.finish();
        let p = p.build().unwrap();
        let d = lint(&p);
        assert_eq!(codes(&d), vec![Code::Uncoalesced]);
        assert_eq!(d[0].severity, Severity::Note);
        assert!(d[0].message.contains("stride-128"));
    }

    #[test]
    fn irregular_gather_is_noted() {
        let mut p = ProgramBuilder::new("gather");
        let x = p.array("x", ElemType::F64, &[512]);
        let y = p.array("y", ElemType::F64, &[64]);
        let mut k = p.kernel("k");
        let i = k.parallel_loop("i", 64);
        k.statement()
            .read_ix(x, &[irr()])
            .write(y, &[idx(i)])
            .finish();
        k.finish();
        let p = p.build().unwrap();
        let d = lint(&p);
        assert_eq!(codes(&d), vec![Code::Uncoalesced]);
        assert!(d[0].message.contains("data-dependent"));
    }

    #[test]
    fn invalid_program_yields_only_structural_errors() {
        let mut p = ProgramBuilder::new("broken");
        let a = p.array("a", ElemType::F32, &[0]); // zero extent
        let mut k = p.kernel("k");
        let i = k.serial_loop("i", 0); // zero trip + no parallelism
        k.statement().read(a, &[idx(i)]).finish();
        k.finish();
        let p = p.build_unchecked();
        let d = lint_program(&p, None, &Hints::new());
        assert!(d.len() >= 3, "{d:?}");
        assert!(d.iter().all(|d| d.code == Code::Structural));
        assert!(d.iter().all(|d| d.severity == Severity::Error));
    }
}
