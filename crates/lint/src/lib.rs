//! `gpp-lint` — a dataflow static analyzer for kernel skeletons.
//!
//! Skeletons are tiny, but the mistakes people make in them are the same
//! ones they make in real kernels: off-by-one stencil bounds, reads of
//! never-written scratch buffers, reductions that race across threads,
//! transfer hints that are missing or contradictory. Because a skeleton
//! feeds a performance *projection*, such mistakes don't crash — they
//! silently skew the predicted transfer volumes and kernel times. This
//! crate catches them before any projection runs.
//!
//! The analyzer layers on the existing semantic infrastructure:
//! [`gpp_skeleton::validate`] for structural integrity,
//! [`gpp_skeleton::sections`] for per-reference bounded regular sections,
//! and [`gpp_datausage`] for the transfer plan the lints reason about.
//! Each finding carries a stable code (`GPP000`–`GPP014`; GPP009 is
//! reserved), a severity, and — when the program came from `.gsk`
//! text — a source span. Skeletons with an explicit `h2d`/`d2h`
//! schedule additionally get whole-program transfer dataflow
//! (GPP010–GPP014), whose findings carry machine-applicable
//! [`fixit::FixIt`]s that `gpp lint --fix` applies.
//!
//! ```
//! use gpp_lint::{lint_source, LintConfig};
//!
//! let src = "\
//! program p
//! array a f32 [8]
//! array b f32 [8]
//! kernel k
//!   parallel i 8
//!   stmt
//!     read  a [i+1]
//!     write b [i]
//! ";
//! let report = lint_source(src, "p.gsk", &LintConfig::new());
//! assert!(report.has_errors());
//! assert_eq!(report.diagnostics[0].code, gpp_lint::Code::OutOfBounds);
//! assert_eq!(report.diagnostics[0].span.line, 7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod explain;
pub mod fixit;
pub mod passes;
mod program;
pub mod render;

pub use diag::{Code, Diagnostic, LintConfig, LintReport, Severity};
pub use explain::{explain, render_explain, Explanation};
pub use fixit::{apply_fixes, Edit, FixIt};
pub use passes::lint_program;
pub use render::{render_human, render_json};

use gpp_datausage::Hints;
use gpp_skeleton::Span;

/// Lints `.gsk` source text end to end: parse (with spans), validate,
/// run every pass, and apply `cfg`. Parse failures become a single
/// GPP000 diagnostic at the offending line rather than an `Err` — a
/// linter's job is to report, not to bail.
pub fn lint_source(src: &str, file: &str, cfg: &LintConfig) -> LintReport {
    let diagnostics = match gpp_skeleton::text::parse_with_spans(src) {
        Ok((program, map)) => {
            let hints = Hints::for_program(&program);
            lint_program(&program, Some(&map), &hints)
        }
        Err(e) => vec![Diagnostic::new(
            Code::Structural,
            Span {
                line: e.line,
                col: e.col,
                len: 0,
            },
            format!("parse error: {}", e.message),
        )],
    };
    LintReport {
        file: file.to_string(),
        diagnostics: cfg.apply(diagnostics),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_failure_is_a_spanned_structural_error() {
        let report = lint_source("program p\nwat\n", "x.gsk", &LintConfig::new());
        assert_eq!(report.diagnostics.len(), 1);
        let d = &report.diagnostics[0];
        assert_eq!(d.code, Code::Structural);
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.span.line, 2);
        assert!(d.message.starts_with("parse error:"), "{}", d.message);
    }

    #[test]
    fn clean_source_lints_clean() {
        let src = "\
program p
array a f32 [64]
array b f32 [64]
kernel k
  parallel i 64
  stmt adds=1
    read  a [i]
    write b [i]
";
        let report = lint_source(src, "x.gsk", &LintConfig::new());
        assert!(report.is_clean(), "{:?}", report.diagnostics);
        assert_eq!(render_human(&report, Some(src)), "");
    }

    #[test]
    fn diagnostics_carry_gsk_spans() {
        let src = "\
program p
array a f32 [8]
array b f32 [8]
kernel k
  parallel i 8
  stmt
    read  a [i+1]
    write b [i]
";
        let report = lint_source(src, "p.gsk", &LintConfig::new());
        assert_eq!(report.errors(), 1);
        let d = &report.diagnostics[0];
        assert_eq!((d.span.line, d.span.col), (7, 5));
        let human = render_human(&report, Some(src));
        assert!(human.contains("p.gsk:7:5: error[GPP001]"), "{human}");
        assert!(human.contains("read  a [i+1]"), "{human}");
    }
}
