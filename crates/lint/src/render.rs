//! Diagnostic renderers: a human format with source snippets and carets,
//! and a line-oriented JSON format for tooling.

use crate::diag::LintReport;
use crate::fixit::{Edit, FixIt};
use std::fmt::Write as _;

/// Renders a report the way compilers do:
///
/// ```text
/// file.gsk:12:5: error[GPP001]: out-of-bounds access to `temp`: …
///    12 |     read  temp  [i-1, j]
///       |     ^^^^^^^^^^^^^^^^^^^^
/// file.gsk: 1 error(s), 0 warning(s), 0 note(s)
/// ```
///
/// Pass the original source to get the quoted line and caret; without it
/// (or for diagnostics with no span) only header lines are printed. A
/// clean report renders as the empty string.
pub fn render_human(report: &LintReport, source: Option<&str>) -> String {
    let lines: Vec<&str> = source.map(|s| s.lines().collect()).unwrap_or_default();
    let mut out = String::new();
    for d in &report.diagnostics {
        if d.span.is_real() {
            let _ = writeln!(
                out,
                "{}:{}:{}: {}[{}]: {}",
                report.file, d.span.line, d.span.col, d.severity, d.code, d.message
            );
            if let Some(text) = lines.get(d.span.line - 1) {
                let num = d.span.line.to_string();
                let width = num.len().max(4);
                let _ = writeln!(out, "{num:>width$} | {text}");
                let _ = writeln!(
                    out,
                    "{:>width$} | {}{}",
                    "",
                    " ".repeat(d.span.col.saturating_sub(1)),
                    "^".repeat(d.span.len.max(1)),
                );
                if let Some(fix) = &d.fix {
                    let _ = writeln!(out, "{:>width$} = fix: {}", "", fix.summary);
                }
            }
        } else {
            let _ = writeln!(
                out,
                "{}: {}[{}]: {}",
                report.file, d.severity, d.code, d.message
            );
        }
    }
    if !report.diagnostics.is_empty() {
        let _ = writeln!(
            out,
            "{}: {} error(s), {} warning(s), {} note(s)",
            report.file,
            report.errors(),
            report.warnings(),
            report.notes()
        );
    }
    out
}

/// Renders a report as a single-line JSON object:
///
/// ```json
/// {"file":"f.gsk","errors":1,"warnings":0,"notes":0,
///  "diagnostics":[{"code":"GPP001","severity":"error",
///                  "line":12,"col":5,"len":20,"message":"…"}]}
/// ```
///
/// `line` 0 means "no source position". The schema is stable; new keys
/// may be added but existing ones never change meaning.
pub fn render_json(report: &LintReport) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"file\":\"{}\",\"errors\":{},\"warnings\":{},\"notes\":{},\"diagnostics\":[",
        json_escape(&report.file),
        report.errors(),
        report.warnings(),
        report.notes()
    );
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"code\":\"{}\",\"severity\":\"{}\",\"line\":{},\"col\":{},\"len\":{},\"message\":\"{}\"",
            d.code,
            d.severity,
            d.span.line,
            d.span.col,
            d.span.len,
            json_escape(&d.message)
        );
        if let Some(fix) = &d.fix {
            out.push_str(",\"fix\":");
            out.push_str(&fix_json(fix));
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Renders one fix-it as a JSON object (`summary` + structured edits).
fn fix_json(fix: &FixIt) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"summary\":\"{}\",\"edits\":[",
        json_escape(&fix.summary)
    );
    for (i, e) in fix.edits.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match e {
            Edit::DeleteLine { line } => {
                let _ = write!(out, "{{\"op\":\"delete\",\"line\":{line}}}");
            }
            Edit::MoveLine { line, before } => {
                let _ = write!(
                    out,
                    "{{\"op\":\"move\",\"line\":{line},\"before\":{before}}}"
                );
            }
            Edit::Append { line, text } => {
                let _ = write!(
                    out,
                    "{{\"op\":\"append\",\"line\":{line},\"text\":\"{}\"}}",
                    json_escape(text)
                );
            }
        }
    }
    out.push_str("]}");
    out
}

/// Escapes a string for embedding in a JSON literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Code, Diagnostic};
    use gpp_skeleton::Span;

    fn report() -> LintReport {
        LintReport {
            file: "f.gsk".into(),
            diagnostics: vec![
                Diagnostic::new(
                    Code::OutOfBounds,
                    Span {
                        line: 2,
                        col: 3,
                        len: 10,
                    },
                    "boom \"quoted\"".into(),
                ),
                Diagnostic::new(Code::UnusedArray, Span::none(), "ghost".into()),
            ],
        }
    }

    #[test]
    fn human_quotes_source_with_caret() {
        let src = "array a f32 [4]\n  read a [i]\n";
        let out = render_human(&report(), Some(src));
        assert!(out.contains("f.gsk:2:3: error[GPP001]: boom"), "{out}");
        assert!(out.contains("   2 |   read a [i]"), "{out}");
        assert!(out.contains("     |   ^^^^^^^^^^"), "{out}");
        // Span-less diagnostics still get a header line.
        assert!(out.contains("f.gsk: warning[GPP004]: ghost"), "{out}");
        assert!(
            out.contains("f.gsk: 1 error(s), 1 warning(s), 0 note(s)"),
            "{out}"
        );
    }

    #[test]
    fn human_without_source_omits_snippets() {
        let out = render_human(&report(), None);
        assert!(out.contains("f.gsk:2:3: error[GPP001]"));
        assert!(!out.contains(" | "));
    }

    #[test]
    fn clean_report_renders_empty() {
        let r = LintReport {
            file: "f.gsk".into(),
            diagnostics: vec![],
        };
        assert_eq!(render_human(&r, None), "");
        assert_eq!(
            render_json(&r),
            "{\"file\":\"f.gsk\",\"errors\":0,\"warnings\":0,\"notes\":0,\"diagnostics\":[]}"
        );
    }

    #[test]
    fn json_is_escaped_and_stable() {
        let out = render_json(&report());
        assert_eq!(
            out,
            "{\"file\":\"f.gsk\",\"errors\":1,\"warnings\":1,\"notes\":0,\"diagnostics\":[\
             {\"code\":\"GPP001\",\"severity\":\"error\",\"line\":2,\"col\":3,\"len\":10,\
             \"message\":\"boom \\\"quoted\\\"\"},\
             {\"code\":\"GPP004\",\"severity\":\"warning\",\"line\":0,\"col\":0,\"len\":0,\
             \"message\":\"ghost\"}]}"
        );
    }

    #[test]
    fn fix_its_render_in_json_and_human() {
        let r = LintReport {
            file: "f.gsk".into(),
            diagnostics: vec![Diagnostic::new(
                Code::CrossKernelH2d,
                Span {
                    line: 2,
                    col: 1,
                    len: 5,
                },
                "redundant h2d".into(),
            )
            .with_fix(FixIt::new(
                "delete the redundant `h2d a`",
                vec![Edit::DeleteLine { line: 2 }],
            ))],
        };
        let json = render_json(&r);
        assert!(
            json.contains(
                "\"fix\":{\"summary\":\"delete the redundant `h2d a`\",\
                 \"edits\":[{\"op\":\"delete\",\"line\":2}]}"
            ),
            "{json}"
        );
        let human = render_human(&r, Some("h2d b\nh2d a\n"));
        assert!(
            human.contains("     = fix: delete the redundant `h2d a`"),
            "{human}"
        );
    }

    #[test]
    fn control_chars_are_escaped() {
        assert_eq!(
            json_escape("a\nb\t\"c\"\\\u{1}"),
            "a\\nb\\t\\\"c\\\"\\\\\\u0001"
        );
    }
}
