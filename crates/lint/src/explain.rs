//! Long-form documentation for every stable diagnostic code, behind
//! `gpp lint --explain GPPnnn`.
//!
//! Each entry explains what the code means, shows a minimal `.gsk`
//! fragment that triggers it, and says how to fix it — the same
//! contract as `rustc --explain`. The [`explain`] text is the single
//! source of truth; a test asserts every code in [`Code::ALL`] has an
//! entry so a new lint cannot ship undocumented.

use crate::diag::Code;

/// One documentation entry for a stable code.
#[derive(Debug, Clone, Copy)]
pub struct Explanation {
    /// What the analyzer detected and why it matters for projections.
    pub cause: &'static str,
    /// A minimal `.gsk` fragment that triggers the diagnostic.
    pub example: &'static str,
    /// How to resolve it (and whether `--fix` can do it automatically).
    pub fix: &'static str,
}

/// Returns the documentation for `code`. Every code has an entry.
pub fn explain(code: Code) -> Explanation {
    match code {
        Code::Structural => Explanation {
            cause: "The skeleton fails parsing or structural validation \
                    (unknown array, zero extent, empty loop nest, …). No \
                    other analysis can run, and no projection is possible.",
            example: "kernel k\n  parallel i 64\n  stmt\n    read ghost [i]   # `ghost` was never declared",
            fix: "Fix the reported structural problem; GPP000 cannot be \
                  allowed away and has no automatic fix.",
        },
        Code::OutOfBounds => Explanation {
            cause: "An affine index provably escapes the array's declared \
                    extents, so the modeled working set is wrong.",
            example: "array a f32 [64]\nkernel k\n  parallel i 64\n  stmt\n    read a [i+1]   # i+1 reaches 64",
            fix: "Shrink the loop trip or adjust the index offset so every \
                  access stays inside the extents.",
        },
        Code::UninitializedRead => Explanation {
            cause: "A `temporary` array is read before it is fully written. \
                    Temporaries get no host-to-device copy, so the read \
                    observes undefined device memory.",
            example: "array t f32 [64] temporary\nkernel k\n  parallel i 64\n  stmt\n    read t [i]   # nothing wrote t yet",
            fix: "Write the temporary before reading it, or drop the \
                  `temporary` attribute if the host really initializes it.",
        },
        Code::DeadWrite => Explanation {
            cause: "A write whose values are never observed: fully \
                    overwritten before any read, or a temporary never read \
                    after its last write. The work and traffic are wasted.",
            example: "kernel first\n  …\n    write x [i]\nkernel second\n  …\n    write x [i]   # overwrites before any read",
            fix: "Delete the dead write or reorder the kernels so the \
                  values are consumed.",
        },
        Code::UnusedArray => Explanation {
            cause: "An array is declared but never referenced by any \
                    kernel; it only inflates the modeled footprint.",
            example: "array ghost f32 [128]   # no kernel touches it",
            fix: "Delete the declaration.",
        },
        Code::ParallelRace => Explanation {
            cause: "Distinct iterations of a parallel loop may touch the \
                    same element with at least one write, so results depend \
                    on thread order.",
            example: "kernel k\n  parallel i 64\n  stmt\n    write y [0]   # every iteration stores to y[0]",
            fix: "Make the write injective in the parallel index, serialize \
                  the loop, or double-buffer the array.",
        },
        Code::RedundantH2d => Explanation {
            cause: "Data produced earlier in the same kernel is still \
                    counted as host-to-device traffic by the per-kernel \
                    transfer analysis, inflating the projection.",
            example: "kernel k\n  stmt\n    write tmp [i]\n  stmt\n    read  tmp [i]   # same-kernel producer",
            fix: "Split the producer into its own kernel so the analyzer \
                  sees the data stay device-resident.",
        },
        Code::MissingTemporary => Explanation {
            cause: "An array produced and last consumed on the device lacks \
                    a `temporary` hint, so the analyzer schedules an \
                    avoidable device-to-host copy.",
            example: "array coeff f32 [256]   # written by kernel 1, read by kernel 2, never needed on host",
            fix: "Add the `temporary` attribute to the declaration \
                  (`--fix` appends it automatically).",
        },
        Code::Uncoalesced => Explanation {
            cause: "A large-stride or data-dependent access on the thread \
                    axis fragments half-warp coalescing, multiplying memory \
                    transactions.",
            example: "array m f32 [128, 128]\nkernel k\n  parallel i 128\n  stmt\n    read m [i, 0]   # stride-128 on the thread axis",
            fix: "Interchange loops (or transpose the layout) so the thread \
                  axis sweeps the contiguous dimension.",
        },
        Code::CrossKernelH2d => Explanation {
            cause: "An explicit `h2d` re-uploads an array that is already \
                    resident and unmodified since the previous upload — the \
                    copy adds transfer time and moves no new bytes. \
                    Transfers on distinct non-zero streams at the same \
                    schedule position are concurrent and unordered, so the \
                    pass never concludes redundancy across them.",
            example: "h2d a\nkernel k1\n  …      # reads a, never writes it\nh2d a   # device copy is still current",
            fix: "Delete the second upload (`--fix` does this \
                  automatically).",
        },
        Code::DeadD2h => Explanation {
            cause: "An explicit `d2h` downloads bytes the host never \
                    observes: the copies already agree, or a later `d2h` of \
                    the same array overwrites the host copy before any \
                    re-upload. Downloads on distinct non-zero streams at the \
                    same schedule position run concurrently with no defined \
                    order, so the overwrite argument does not apply across \
                    them.",
            example: "d2h b   # dead: overwritten below\nkernel k2\n  …      # rewrites b on the device\nd2h b",
            fix: "Delete the dead download (`--fix` does this \
                  automatically).",
        },
        Code::MissingResidency => Explanation {
            cause: "An array is downloaded and immediately re-uploaded with \
                    no kernel touching it in between — a round-trip through \
                    the host where the data should have stayed resident. A \
                    d2h/h2d pair on distinct non-zero streams at the same \
                    position is concurrent, not a round-trip, and is left \
                    alone.",
            example: "kernel produce\n  …      # writes t\nd2h t\nh2d t   # nothing touched t on the host\nkernel consume",
            fix: "Delete both transfers to keep the array device-resident \
                  (`--fix` does this automatically); mark it `temporary` if \
                  the host never needs it at all.",
        },
        Code::HoistableTransfer => Explanation {
            cause: "An `h2d` is scheduled after kernels that never \
                    reference the array. Hoisting it before the first \
                    kernel cannot change semantics and lets the upload \
                    precede (or overlap) unrelated compute. Uploads already \
                    annotated with a non-zero stream are deliberate \
                    prefetches — they overlap the adjacent kernel in place, \
                    so the pass does not suggest moving them.",
            example: "kernel k1\n  …      # never touches b\nh2d b   # could run before k1\nkernel k2",
            fix: "Move the upload before the first kernel (`--fix` does \
                  this automatically).",
        },
        Code::SerializedTransfer => Explanation {
            cause: "A large synchronous transfer sits next to a kernel it \
                    could overlap: the schedule pays \
                    `transfer + compute` where a `stream N chunks=K` \
                    annotation would pipeline the copy against the kernel \
                    and pay close to `max(transfer, compute)` instead.",
            example: "h2d a          # 32 MB, synchronous\nkernel k       # consumes a — copy and compute serialize\n  …",
            fix: "Annotate the transfer with a non-zero stream and a \
                  chunk count, e.g. `h2d a stream 1 chunks=4` (`--fix` \
                  appends this automatically).",
        },
    }
}

/// Renders the explanation for a wire-name code (`GPP004`, case
/// insensitive). `None` if the code is unknown.
pub fn render_explain(code_name: &str) -> Option<String> {
    let code = Code::parse(code_name)?;
    let e = explain(code);
    let mut out = String::new();
    out.push_str(&format!("{code} — {}\n\n", code.default_severity()));
    out.push_str(&format!("{}\n\nexample:\n", e.cause));
    for line in e.example.lines() {
        out.push_str(&format!("    {line}\n"));
    }
    out.push_str(&format!("\nfix: {}\n", e.fix));
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_code_has_a_nonempty_explanation() {
        for c in Code::ALL {
            let e = explain(c);
            assert!(!e.cause.is_empty(), "{c} has no cause");
            assert!(!e.example.is_empty(), "{c} has no example");
            assert!(!e.fix.is_empty(), "{c} has no fix");
        }
    }

    #[test]
    fn render_resolves_case_insensitively() {
        let out = render_explain("gpp012").expect("known code");
        assert!(out.starts_with("GPP012 — warning"), "{out}");
        assert!(out.contains("round-trip"), "{out}");
        assert!(render_explain("GPP999").is_none());
    }
}
