//! Machine-applicable fix-its and the line-edit engine behind
//! `gpp lint --fix`.
//!
//! A [`FixIt`] is a small, structured rewrite of the `.gsk` source that
//! resolves one diagnostic: delete a redundant transfer line, move a
//! hoistable upload, or append a `temporary` hint to an array
//! declaration. Edits are expressed against 1-based source lines — the
//! same coordinates diagnostics use — so they can be rendered, shipped
//! over the serve protocol, and applied without re-running analysis.
//!
//! [`apply_fixes`] applies every fix from a lint report in one batch.
//! It is written so that a *second* `--fix` pass over its own output
//! finds nothing to do: deletions and moves remove the lines the
//! diagnostics anchored on, so re-linting the rewritten text is the
//! idempotency check.

use crate::diag::Diagnostic;

/// One primitive source rewrite, in 1-based line coordinates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Edit {
    /// Remove line `line` entirely (including its terminator).
    DeleteLine {
        /// 1-based line to delete.
        line: usize,
    },
    /// Remove line `line` and re-insert it immediately before line
    /// `before` (both in *original* coordinates).
    MoveLine {
        /// 1-based line to move.
        line: usize,
        /// 1-based line the moved text is inserted before.
        before: usize,
    },
    /// Append `text` to the end of line `line`.
    Append {
        /// 1-based line to extend.
        line: usize,
        /// Text appended verbatim (include any leading space).
        text: String,
    },
}

impl Edit {
    /// The primary line this edit touches (for conflict detection).
    fn target(&self) -> usize {
        match self {
            Edit::DeleteLine { line } | Edit::MoveLine { line, .. } | Edit::Append { line, .. } => {
                *line
            }
        }
    }
}

/// A machine-applicable resolution for one diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixIt {
    /// One-line human description, e.g. `delete redundant h2d`.
    pub summary: String,
    /// The edits, all in coordinates of the *original* source.
    pub edits: Vec<Edit>,
}

impl FixIt {
    /// Convenience constructor.
    pub fn new(summary: impl Into<String>, edits: Vec<Edit>) -> FixIt {
        FixIt {
            summary: summary.into(),
            edits,
        }
    }
}

/// Applies every fix carried by `diags` to `src` in one batch and
/// returns the rewritten text plus how many fixes were applied.
///
/// All edits use original line numbers; the engine resolves them
/// simultaneously, so later edits are not skewed by earlier deletions.
/// If two fixes touch the same line (e.g. a GPP012 round-trip pair
/// whose `h2d` line a GPP010 also flagged), the first fix wins and the
/// conflicting one is skipped — re-running `--fix` converges because
/// the surviving diagnostics are recomputed from the rewritten text.
pub fn apply_fixes(src: &str, diags: &[Diagnostic]) -> (String, usize) {
    let lines: Vec<&str> = src.lines().collect();
    // Per original line: delete it? move it before X? text to append?
    let mut delete = vec![false; lines.len()];
    let mut append: Vec<Option<&str>> = vec![None; lines.len()];
    // insert_before[i] = indices of original lines to re-emit before line i+1.
    let mut insert_before: Vec<Vec<usize>> = vec![Vec::new(); lines.len() + 1];
    let mut touched = vec![false; lines.len()];
    let mut applied = 0usize;

    'fix: for d in diags {
        let Some(fix) = &d.fix else { continue };
        let in_range = |line: usize| line >= 1 && line <= lines.len();
        // Reject the whole fix if any edit conflicts or is out of range.
        for e in &fix.edits {
            let t = e.target();
            if !in_range(t) || touched[t - 1] {
                continue 'fix;
            }
            if let Edit::MoveLine { before, .. } = e {
                if *before < 1 || *before > lines.len() + 1 {
                    continue 'fix;
                }
            }
        }
        for e in &fix.edits {
            touched[e.target() - 1] = true;
            match e {
                Edit::DeleteLine { line } => delete[line - 1] = true,
                Edit::MoveLine { line, before } => {
                    delete[line - 1] = true;
                    insert_before[before - 1].push(line - 1);
                }
                Edit::Append { line, text } => append[line - 1] = Some(text),
            }
        }
        applied += 1;
    }

    if applied == 0 {
        return (src.to_string(), 0);
    }

    let mut out = String::with_capacity(src.len());
    for (i, line) in lines.iter().enumerate() {
        for &moved in &insert_before[i] {
            out.push_str(lines[moved]);
            out.push('\n');
        }
        if delete[i] {
            continue;
        }
        out.push_str(line);
        if let Some(extra) = append[i] {
            out.push_str(extra);
        }
        out.push('\n');
    }
    for &moved in &insert_before[lines.len()] {
        out.push_str(lines[moved]);
        out.push('\n');
    }
    (out, applied)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Code;
    use gpp_skeleton::Span;

    fn diag_with(edits: Vec<Edit>) -> Diagnostic {
        Diagnostic::new(Code::CrossKernelH2d, Span::none(), "x".into())
            .with_fix(FixIt::new("fix", edits))
    }

    #[test]
    fn delete_move_append_compose() {
        let src = "a\nb\nc\nd\n";
        let diags = vec![
            diag_with(vec![Edit::DeleteLine { line: 2 }]),
            diag_with(vec![Edit::MoveLine { line: 4, before: 1 }]),
            diag_with(vec![Edit::Append {
                line: 3,
                text: " tail".into(),
            }]),
        ];
        let (out, n) = apply_fixes(src, &diags);
        assert_eq!(n, 3);
        assert_eq!(out, "d\na\nc tail\n");
    }

    #[test]
    fn conflicting_fixes_apply_first_only() {
        let src = "a\nb\n";
        let diags = vec![
            diag_with(vec![Edit::DeleteLine { line: 2 }]),
            diag_with(vec![
                Edit::DeleteLine { line: 1 },
                Edit::DeleteLine { line: 2 }, // conflicts with the first fix
            ]),
        ];
        let (out, n) = apply_fixes(src, &diags);
        assert_eq!(n, 1);
        assert_eq!(out, "a\n");
    }

    #[test]
    fn out_of_range_fix_is_skipped() {
        let (out, n) = apply_fixes("a\n", &[diag_with(vec![Edit::DeleteLine { line: 9 }])]);
        assert_eq!((out.as_str(), n), ("a\n", 0));
    }

    #[test]
    fn no_fixes_returns_source_verbatim() {
        let d = Diagnostic::new(Code::DeadWrite, Span::none(), "m".into());
        let (out, n) = apply_fixes("x\ny\n", &[d]);
        assert_eq!((out.as_str(), n), ("x\ny\n", 0));
    }

    #[test]
    fn move_to_end_appends() {
        let (out, n) = apply_fixes(
            "a\nb\n",
            &[diag_with(vec![Edit::MoveLine { line: 1, before: 3 }])],
        );
        assert_eq!(n, 1);
        assert_eq!(out, "b\na\n");
    }
}
