//! Whole-program transfer dataflow: the GPP010–GPP014 pass family.
//!
//! These lints only run when the skeleton spells out its transfer
//! schedule with explicit `h2d`/`d2h` directives
//! ([`Program::has_explicit_transfers`]); derived schedules are optimal
//! by construction, so there is nothing to critique. The pass tracks a
//! per-array *residency lattice* over the interleaved kernel/transfer
//! sequence:
//!
//! * `HostOnly` — the array has never been uploaded,
//! * `Synced` — host and device copies agree,
//! * `DeviceAhead` — a kernel wrote the device copy since the last sync.
//!
//! Kernels that write an array move it to `DeviceAhead`; an `h2d` or
//! `d2h` moves it to `Synced`. Transfers that cannot change the visible
//! state are redundant:
//!
//! * **GPP010** — `h2d` while `Synced`: the device already holds these
//!   exact bytes.
//! * **GPP011** — `d2h` while `Synced`, or a `d2h` whose host copy is
//!   overwritten by a later `d2h` before any `h2d` could observe it.
//! * **GPP012** — a `d2h` immediately followed (in the array's own
//!   event stream) by an `h2d` of the same array: a round-trip through
//!   the host where the data should have stayed resident.
//! * **GPP013** (note) — an `h2d` scheduled after kernels that never
//!   reference the array: hoisting it before the first kernel cannot
//!   change semantics and lets the upload precede unrelated compute.
//! * **GPP014** (note) — a large synchronous transfer adjacent to a
//!   kernel it could overlap: a `stream N chunks=K` annotation would
//!   pipeline the copy against the compute instead of serializing.
//!
//! Events carry stream ids. Two transfers on *distinct non-zero*
//! streams at the same schedule position are concurrent with no defined
//! order, so the redundancy arguments above do not hold across them:
//! GPP010–GPP012 never fire on such a pair, and GPP013 leaves
//! stream-annotated uploads alone (async placement is a deliberate
//! prefetch). Stream 0 is the synchronous stream and orders with
//! everything.
//!
//! Every finding carries a machine-applicable [`FixIt`] when the
//! program came from `.gsk` text (fixes edit source lines, so spans are
//! required); `gpp lint --fix` applies them.

use crate::diag::{Code, Diagnostic};
use crate::fixit::{Edit, FixIt};
use gpp_brs::{AccessKind, ArrayId};
use gpp_skeleton::{Program, SourceMap, Span, TransferKind};
use std::collections::BTreeSet;

/// Device-residency state of one array at one program point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Residency {
    HostOnly,
    Synced,
    DeviceAhead,
}

/// One event in a single array's timeline.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Transfer index into `program.transfers`.
    Xfer(usize, TransferKind),
    /// A kernel that references the array; `true` if it writes it.
    Kernel(bool),
}

/// Runs the GPP010–GPP013 family. No-op unless the program carries an
/// explicit transfer schedule.
pub(crate) fn transfer_dataflow(p: &Program, map: Option<&SourceMap>, diags: &mut Vec<Diagnostic>) {
    if !p.has_explicit_transfers() {
        return;
    }
    // Which arrays each kernel reads/writes.
    let touches: Vec<Vec<(ArrayId, bool)>> = p
        .kernels
        .iter()
        .map(|k| {
            let mut v: Vec<(ArrayId, bool)> = Vec::new();
            for r in k.statements.iter().flat_map(|s| s.refs.iter()) {
                let w = r.kind == AccessKind::Write;
                match v.iter_mut().find(|(a, _)| *a == r.array) {
                    Some(e) => e.1 |= w,
                    None => v.push((r.array, w)),
                }
            }
            v
        })
        .collect();

    let t_span = |ti: usize| -> Span { map.map(|m| m.transfer_span(ti)).unwrap_or_default() };
    // Two transfer directives are concurrent — no defined order between
    // them — when they sit at the same schedule position on distinct
    // non-zero streams. Stream 0 is synchronous and orders with
    // everything, so it never forms a concurrent pair.
    let concurrent = |ti: usize, tj: usize| -> bool {
        let (a, b) = (&p.transfers[ti], &p.transfers[tj]);
        a.pos == b.pos && a.stream != 0 && b.stream != 0 && a.stream != b.stream
    };
    let first_kernel_line = map
        .filter(|_| !p.kernels.is_empty())
        .map(|m| m.kernel_span(0).line)
        .unwrap_or(0);

    // Per-array event streams in program order (transfer at pos q comes
    // before kernel q).
    let streams: Vec<(ArrayId, Vec<Ev>)> = p
        .arrays
        .iter()
        .map(|decl| {
            let a = decl.id;
            let mut evs = Vec::new();
            let mut ti = 0;
            for (ki, t) in touches.iter().enumerate() {
                while ti < p.transfers.len() && p.transfers[ti].pos <= ki {
                    if p.transfers[ti].array == a {
                        evs.push(Ev::Xfer(ti, p.transfers[ti].kind));
                    }
                    ti += 1;
                }
                if let Some(&(_, w)) = t.iter().find(|(id, _)| *id == a) {
                    evs.push(Ev::Kernel(w));
                }
            }
            while ti < p.transfers.len() {
                if p.transfers[ti].array == a {
                    evs.push(Ev::Xfer(ti, p.transfers[ti].kind));
                }
                ti += 1;
            }
            (a, evs)
        })
        .collect();

    // GPP012 first: round-trip pairs suppress GPP010/GPP011 on their
    // members (the pair fix already deletes both lines).
    let mut paired: BTreeSet<usize> = BTreeSet::new();
    for (a, evs) in &streams {
        let name = &p.array(*a).name;
        let mut i = 0;
        while i + 1 < evs.len() {
            if let (
                Ev::Xfer(ti, TransferKind::DeviceToHost),
                Ev::Xfer(tj, TransferKind::HostToDevice),
            ) = (evs[i], evs[i + 1])
            {
                if concurrent(ti, tj) {
                    // Unordered pair: not a round-trip, just two copies
                    // in flight at once.
                    i += 1;
                    continue;
                }
                paired.insert(ti);
                paired.insert(tj);
                let (da, ha) = (t_span(ti), t_span(tj));
                let mut d = Diagnostic::new(
                    Code::MissingResidency,
                    da,
                    format!(
                        "`{name}` makes a round-trip through the host: downloaded \
                         here and re-uploaded with no kernel touching it in \
                         between — keep it device-resident",
                    ),
                );
                if da.is_real() && ha.is_real() {
                    d = d.with_fix(FixIt::new(
                        format!("keep `{name}` device-resident: delete the d2h/h2d round-trip"),
                        vec![
                            Edit::DeleteLine { line: da.line },
                            Edit::DeleteLine { line: ha.line },
                        ],
                    ));
                }
                diags.push(d);
                i += 2;
            } else {
                i += 1;
            }
        }
    }

    // Residency walk: GPP010 and the synced form of GPP011.
    let mut flagged: BTreeSet<usize> = BTreeSet::new();
    for (a, evs) in &streams {
        let decl = p.array(*a);
        let mut state = Residency::HostOnly;
        // The transfer that last touched this array's residency: when
        // the current directive is concurrent with it, their order is
        // undefined and no redundancy conclusion holds.
        let mut last_xfer: Option<usize> = None;
        for ev in evs {
            match *ev {
                Ev::Kernel(true) => state = Residency::DeviceAhead,
                Ev::Kernel(false) => {}
                Ev::Xfer(ti, TransferKind::HostToDevice) => {
                    let racy = last_xfer.is_some_and(|tj| concurrent(ti, tj));
                    if state == Residency::Synced && !racy && !paired.contains(&ti) {
                        flagged.insert(ti);
                        let span = t_span(ti);
                        let mut d = Diagnostic::new(
                            Code::CrossKernelH2d,
                            span,
                            format!(
                                "redundant h2d of `{}`: the device copy is already \
                                 in sync and no kernel modified it since the last \
                                 upload — this re-sends {}",
                                decl.name,
                                gpp_datausage::plan::human_bytes(decl.byte_count()),
                            ),
                        );
                        if span.is_real() {
                            d = d.with_fix(FixIt::new(
                                format!("delete the redundant `h2d {}`", decl.name),
                                vec![Edit::DeleteLine { line: span.line }],
                            ));
                        }
                        diags.push(d);
                    }
                    state = Residency::Synced;
                    last_xfer = Some(ti);
                }
                Ev::Xfer(ti, TransferKind::DeviceToHost) => {
                    let racy = last_xfer.is_some_and(|tj| concurrent(ti, tj));
                    if state == Residency::Synced && !racy && !paired.contains(&ti) {
                        flagged.insert(ti);
                        let span = t_span(ti);
                        let mut d = Diagnostic::new(
                            Code::DeadD2h,
                            span,
                            format!(
                                "dead d2h of `{}`: host and device copies already \
                                 agree, so this downloads nothing new",
                                decl.name
                            ),
                        );
                        if span.is_real() {
                            d = d.with_fix(FixIt::new(
                                format!("delete the dead `d2h {}`", decl.name),
                                vec![Edit::DeleteLine { line: span.line }],
                            ));
                        }
                        diags.push(d);
                    }
                    state = Residency::Synced;
                    last_xfer = Some(ti);
                }
            }
        }
    }

    // GPP011, overwritten form: a d2h whose host copy is clobbered by
    // the array's next transfer (another d2h) before any h2d could
    // consume it. The final d2h of an array is always live — program
    // end observes the host copy.
    for (a, evs) in &streams {
        let decl = p.array(*a);
        let xfers: Vec<(usize, TransferKind)> = evs
            .iter()
            .filter_map(|e| match *e {
                Ev::Xfer(ti, k) => Some((ti, k)),
                _ => None,
            })
            .collect();
        for w in xfers.windows(2) {
            let ((ti, k0), (tj, k1)) = (w[0], w[1]);
            if k0 == TransferKind::DeviceToHost
                && k1 == TransferKind::DeviceToHost
                && !concurrent(ti, tj)
                && !paired.contains(&ti)
                && !flagged.contains(&ti)
            {
                flagged.insert(ti);
                let span = t_span(ti);
                let mut d = Diagnostic::new(
                    Code::DeadD2h,
                    span,
                    format!(
                        "dead d2h of `{}`: the downloaded bytes are overwritten \
                         by a later d2h before anything re-uploads them",
                        decl.name
                    ),
                );
                if span.is_real() {
                    d = d.with_fix(FixIt::new(
                        format!("delete the dead `d2h {}`", decl.name),
                        vec![Edit::DeleteLine { line: span.line }],
                    ));
                }
                diags.push(d);
            }
        }
    }

    // GPP013: an h2d after kernels that never reference the array — it
    // can be hoisted to the top of the program without changing what
    // any kernel observes.
    let mut hoisted: BTreeSet<usize> = BTreeSet::new();
    for (ti, t) in p.transfers.iter().enumerate() {
        // A stream-annotated upload is a deliberate prefetch: it already
        // overlaps the adjacent kernel in place, so moving it is not an
        // improvement.
        if t.kind != TransferKind::HostToDevice
            || t.pos == 0
            || t.stream != 0
            || paired.contains(&ti)
            || flagged.contains(&ti)
        {
            continue;
        }
        let earlier_xfer = p.transfers[..ti].iter().any(|u| u.array == t.array);
        let referenced_before = touches[..t.pos.min(touches.len())]
            .iter()
            .any(|k| k.iter().any(|(a, _)| *a == t.array));
        if earlier_xfer || referenced_before {
            continue;
        }
        hoisted.insert(ti);
        let decl = p.array(t.array);
        let span = t_span(ti);
        let mut d = Diagnostic::new(
            Code::HoistableTransfer,
            span,
            format!(
                "`h2d {}` runs after {} kernel(s) that never touch `{}` — \
                 hoist the upload before the first kernel",
                decl.name, t.pos, decl.name
            ),
        );
        if span.is_real() && first_kernel_line > 0 {
            d = d.with_fix(FixIt::new(
                format!("hoist `h2d {}` before the first kernel", decl.name),
                vec![Edit::MoveLine {
                    line: span.line,
                    before: first_kernel_line,
                }],
            ));
        }
        diags.push(d);
    }

    // GPP014 (note): a large synchronous, unchunked transfer sitting
    // next to a kernel it could overlap — an `h2d` before its consumer
    // or a `d2h` after its producer. Annotating `stream 1 chunks=4`
    // pipelines the copy against that kernel; copies under 1 MB are
    // latency-bound and not worth the note. Transfers already flagged
    // (or hoisted) get one actionable finding, not two.
    const OVERLAP_WORTHWHILE_BYTES: u64 = 1 << 20;
    for (ti, t) in p.transfers.iter().enumerate() {
        if t.stream != 0
            || t.chunks > 1
            || paired.contains(&ti)
            || flagged.contains(&ti)
            || hoisted.contains(&ti)
        {
            continue;
        }
        let overlappable = match t.kind {
            TransferKind::HostToDevice => t.pos < p.kernels.len(),
            TransferKind::DeviceToHost => t.pos > 0,
        };
        let decl = p.array(t.array);
        if !overlappable || decl.byte_count() < OVERLAP_WORTHWHILE_BYTES {
            continue;
        }
        let (dir, neighbor) = match t.kind {
            TransferKind::HostToDevice => ("h2d", "next"),
            TransferKind::DeviceToHost => ("d2h", "previous"),
        };
        let span = t_span(ti);
        let mut d = Diagnostic::new(
            Code::SerializedTransfer,
            span,
            format!(
                "synchronous `{dir} {}` ({}) serializes with the {neighbor} \
                 kernel — `stream 1 chunks=4` would overlap the copy with \
                 that compute",
                decl.name,
                gpp_datausage::plan::human_bytes(decl.byte_count()),
            ),
        );
        if span.is_real() {
            d = d.with_fix(FixIt::new(
                format!("pipeline `{dir} {}` on a concurrent stream", decl.name),
                vec![Edit::Append {
                    line: span.line,
                    text: " stream 1 chunks=4".into(),
                }],
            ));
        }
        diags.push(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint_source;
    use crate::LintConfig;

    fn codes(src: &str) -> Vec<(Code, usize)> {
        lint_source(src, "t.gsk", &LintConfig::new())
            .diagnostics
            .iter()
            .map(|d| (d.code, d.span.line))
            .collect()
    }

    const REUPLOAD: &str = "\
program p
array a f32 [64]
array b f32 [64]
array c f32 [64]
h2d a
kernel k1
  parallel i 64
  stmt adds=1
    read  a [i]
    write b [i]
h2d a
kernel k2
  parallel i 64
  stmt adds=1
    read  a [i]
    write c [i]
d2h b
d2h c
";

    #[test]
    fn synced_reupload_is_gpp010_with_delete_fix() {
        let report = lint_source(REUPLOAD, "t.gsk", &LintConfig::new());
        let got: Vec<(Code, usize)> = report
            .diagnostics
            .iter()
            .map(|d| (d.code, d.span.line))
            .collect();
        assert_eq!(
            got,
            vec![(Code::CrossKernelH2d, 11)],
            "{:?}",
            report.diagnostics
        );
        let fix = report.diagnostics[0].fix.as_ref().expect("fix");
        assert_eq!(fix.edits, vec![Edit::DeleteLine { line: 11 }]);
    }

    #[test]
    fn kernel_write_invalidates_residency() {
        // The kernel writes `a` between the uploads: re-upload is live.
        let src = REUPLOAD.replace("    write b [i]\nh2d a", "    write a [i]\nh2d a");
        assert!(
            !codes(&src).iter().any(|(c, _)| *c == Code::CrossKernelH2d),
            "{:?}",
            codes(&src)
        );
    }

    #[test]
    fn roundtrip_is_gpp012_and_suppresses_members() {
        let src = "\
program p
array a f32 [64]
array t f32 [64] temporary
array c f32 [64]
h2d a
kernel produce
  parallel i 64
  stmt adds=1
    read  a [i]
    write t [i]
d2h t
h2d t
kernel consume
  parallel i 64
  stmt adds=1
    read  t [i]
    write c [i]
d2h c
";
        let report = lint_source(src, "t.gsk", &LintConfig::new());
        let got: Vec<Code> = report.diagnostics.iter().map(|d| d.code).collect();
        assert_eq!(
            got,
            vec![Code::MissingResidency],
            "{:?}",
            report.diagnostics
        );
        let fix = report.diagnostics[0].fix.as_ref().unwrap();
        assert_eq!(
            fix.edits,
            vec![Edit::DeleteLine { line: 11 }, Edit::DeleteLine { line: 12 }]
        );
    }

    #[test]
    fn overwritten_download_is_gpp011() {
        let src = "\
program p
array a f32 [64]
array b f32 [64]
h2d a
kernel k1
  parallel i 64
  stmt adds=1
    read  a [i]
    write b [i]
d2h b
kernel k2
  parallel i 64
  stmt adds=1
    read  b [i]
    write b [i]
d2h b
";
        let report = lint_source(src, "t.gsk", &LintConfig::new());
        let got: Vec<(Code, usize)> = report
            .diagnostics
            .iter()
            .map(|d| (d.code, d.span.line))
            .collect();
        assert_eq!(got, vec![(Code::DeadD2h, 10)], "{:?}", report.diagnostics);
    }

    #[test]
    fn late_upload_of_untouched_array_is_hoistable() {
        let src = "\
program p
array a f32 [64]
array b f32 [64]
array c f32 [64] temporary
array d f32 [64]
h2d a
kernel k1
  parallel i 64
  stmt adds=1
    read  a [i]
    write c [i]
h2d b
kernel k2
  parallel i 64
  stmt adds=1
    read  b [i]
    read  c [i]
    write d [i]
d2h d
";
        let report = lint_source(src, "t.gsk", &LintConfig::new());
        let got: Vec<Code> = report.diagnostics.iter().map(|d| d.code).collect();
        assert_eq!(
            got,
            vec![Code::HoistableTransfer],
            "{:?}",
            report.diagnostics
        );
        let d = &report.diagnostics[0];
        assert_eq!(d.severity, crate::Severity::Note);
        let fix = d.fix.as_ref().unwrap();
        assert_eq!(
            fix.edits,
            vec![Edit::MoveLine {
                line: 12,
                before: 7
            }]
        );
    }

    #[test]
    fn derived_schedules_are_exempt() {
        // Same program as REUPLOAD minus the transfer directives: the
        // pass must stay silent when the schedule is derived.
        let src: String = REUPLOAD
            .lines()
            .filter(|l| !l.starts_with("h2d") && !l.starts_with("d2h"))
            .map(|l| format!("{l}\n"))
            .collect();
        assert_eq!(codes(&src), vec![], "derived schedule must not lint");
    }

    #[test]
    fn concurrent_streams_suppress_gpp010() {
        // Two re-uploads of `a` at the same position: the stream-1 copy
        // is ordered after the original upload (GPP010 fires), but the
        // stream-2 copy is concurrent with it — no defined order, no
        // redundancy conclusion.
        let src = "\
program p
array a f32 [64]
array b f32 [64]
array c f32 [64]
h2d a
kernel k1
  parallel i 64
  stmt adds=1
    read  a [i]
    write b [i]
h2d a stream 1
h2d a stream 2
kernel k2
  parallel i 64
  stmt adds=1
    read  a [i]
    write c [i]
d2h b
d2h c
";
        assert_eq!(codes(src), vec![(Code::CrossKernelH2d, 11)]);
    }

    #[test]
    fn concurrent_roundtrip_is_not_gpp012() {
        // d2h/h2d of the same array on distinct non-zero streams at the
        // same position run concurrently — not a host round-trip.
        let src = "\
program p
array a f32 [64]
array t f32 [64] temporary
array c f32 [64]
h2d a
kernel produce
  parallel i 64
  stmt adds=1
    read  a [i]
    write t [i]
d2h t stream 1
h2d t stream 2
kernel consume
  parallel i 64
  stmt adds=1
    read  t [i]
    write c [i]
d2h c
";
        assert_eq!(codes(src), vec![]);
    }

    #[test]
    fn concurrent_downloads_are_not_dead() {
        // Two d2h of `b` at the same position on different streams:
        // neither "overwrites" the other — order is undefined.
        let src = "\
program p
array a f32 [64]
array b f32 [64]
h2d a
kernel k1
  parallel i 64
  stmt adds=1
    read  a [i]
    write b [i]
d2h b stream 1
d2h b stream 2
";
        assert_eq!(codes(src), vec![]);
    }

    #[test]
    fn async_upload_is_not_hoistable() {
        // The stream annotation marks the late upload as a deliberate
        // prefetch that overlaps k1 in place; GPP013 leaves it alone.
        let src = "\
program p
array a f32 [64]
array b f32 [64]
array c f32 [64] temporary
array d f32 [64]
h2d a
kernel k1
  parallel i 64
  stmt adds=1
    read  a [i]
    write c [i]
h2d b async
kernel k2
  parallel i 64
  stmt adds=1
    read  b [i]
    read  c [i]
    write d [i]
d2h d
";
        assert_eq!(codes(src), vec![]);
    }

    #[test]
    fn large_sync_transfers_are_gpp014_with_append_fix() {
        // 4 MB arrays on a fully synchronous schedule: both the upload
        // (before its consumer) and the download (after its producer)
        // could overlap compute.
        let src = "\
program p
array a f32 [1048576]
array b f32 [1048576]
h2d a
kernel k
  parallel i 1048576
  stmt adds=1
    read  a [i]
    write b [i]
d2h b
";
        let report = lint_source(src, "t.gsk", &LintConfig::new());
        let got: Vec<(Code, usize)> = report
            .diagnostics
            .iter()
            .map(|d| (d.code, d.span.line))
            .collect();
        assert_eq!(
            got,
            vec![
                (Code::SerializedTransfer, 4),
                (Code::SerializedTransfer, 10)
            ],
            "{:?}",
            report.diagnostics
        );
        for d in &report.diagnostics {
            assert_eq!(d.severity, crate::Severity::Note);
            let fix = d.fix.as_ref().expect("fix");
            assert_eq!(
                fix.edits,
                vec![Edit::Append {
                    line: d.span.line,
                    text: " stream 1 chunks=4".into(),
                }]
            );
        }
        // Applying the fixes annotates the schedule; a re-lint is clean
        // (the pass is idempotent).
        let (fixed, n) = crate::fixit::apply_fixes(src, &report.diagnostics);
        assert_eq!(n, 2);
        assert_eq!(codes(&fixed), vec![]);
    }

    #[test]
    fn small_or_annotated_transfers_are_not_gpp014() {
        // Tiny copies are latency-bound; chunked or streamed copies are
        // already pipelined. None of them warrant the note.
        let src = "\
program p
array a f32 [1048576]
array b f32 [64]
h2d a stream 1 chunks=4
kernel k
  parallel i 64
  stmt adds=1
    read  a [i]
    write b [i]
d2h b
";
        assert_eq!(codes(src), vec![]);
    }

    #[test]
    fn sane_explicit_schedule_is_clean() {
        let src = "\
program p
array a f32 [64]
array b f32 [64]
h2d a
kernel k
  parallel i 64
  stmt adds=1
    read  a [i]
    write b [i]
d2h b
";
        assert_eq!(codes(src), vec![]);
    }
}
