//! Diagnostic vocabulary: stable codes, severities, and lint configuration.

use gpp_skeleton::Span;
use std::collections::BTreeSet;

/// A stable diagnostic code. Codes never change meaning once published;
/// retired codes are not reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// GPP000 — structural error: the skeleton fails parsing or
    /// [`gpp_skeleton::validate`]. Nothing else can be analyzed.
    Structural,
    /// GPP001 — an affine index provably escapes the array's extents.
    OutOfBounds,
    /// GPP002 — a `temporary` array is read before it is fully written.
    /// Temporaries receive no host-to-device copy, so the data read is
    /// undefined (and the analyzer still schedules garbage H2D traffic
    /// for it).
    UninitializedRead,
    /// GPP003 — a write whose values are never observed: fully
    /// overwritten before any read, or a temporary that is never read
    /// after its last write.
    DeadWrite,
    /// GPP004 — an array declared but never referenced by any kernel.
    UnusedArray,
    /// GPP005 — distinct iterations of a parallel loop may touch the
    /// same element with at least one write.
    ParallelRace,
    /// GPP006 — data produced earlier in the *same* kernel is still
    /// counted as host-to-device traffic by the per-kernel transfer
    /// analysis.
    RedundantH2d,
    /// GPP007 — an array that is produced and last consumed on the
    /// device but lacks a `temporary` hint, paying an avoidable
    /// device-to-host transfer.
    MissingTemporary,
    /// GPP008 — a large-stride or data-dependent access on the thread
    /// axis that fragments half-warp coalescing.
    Uncoalesced,
    /// GPP010 — an explicit `h2d` re-uploads data that is already
    /// resident on the device and has not changed on the host since the
    /// previous upload. The copy is pure waste. (GPP009 is reserved.)
    CrossKernelH2d,
    /// GPP011 — an explicit `d2h` whose downloaded bytes are never
    /// observed on the host: either the device copy is already in sync,
    /// or a later `d2h` of the same array overwrites the host copy
    /// before anything could read it.
    DeadD2h,
    /// GPP012 — a round-trip through the host: an array is downloaded
    /// and immediately re-uploaded with no kernel touching it in
    /// between. The producer/consumer pair should keep it resident.
    MissingResidency,
    /// GPP013 — an `h2d` placed after kernels that never reference the
    /// array; hoisting it before the first kernel lets the upload
    /// overlap (or at least precede) unrelated compute.
    HoistableTransfer,
    /// GPP014 — a large synchronous transfer sits adjacent to a kernel
    /// it could overlap: annotating it `stream N chunks=K` would pipeline
    /// the copy against the compute instead of serializing the schedule.
    SerializedTransfer,
}

impl Code {
    /// Every code, in numeric order. GPP009 is reserved and absent.
    pub const ALL: [Code; 14] = [
        Code::Structural,
        Code::OutOfBounds,
        Code::UninitializedRead,
        Code::DeadWrite,
        Code::UnusedArray,
        Code::ParallelRace,
        Code::RedundantH2d,
        Code::MissingTemporary,
        Code::Uncoalesced,
        Code::CrossKernelH2d,
        Code::DeadD2h,
        Code::MissingResidency,
        Code::HoistableTransfer,
        Code::SerializedTransfer,
    ];

    /// The stable wire name, `GPP000` … `GPP014` (GPP009 reserved).
    pub fn as_str(self) -> &'static str {
        match self {
            Code::Structural => "GPP000",
            Code::OutOfBounds => "GPP001",
            Code::UninitializedRead => "GPP002",
            Code::DeadWrite => "GPP003",
            Code::UnusedArray => "GPP004",
            Code::ParallelRace => "GPP005",
            Code::RedundantH2d => "GPP006",
            Code::MissingTemporary => "GPP007",
            Code::Uncoalesced => "GPP008",
            Code::CrossKernelH2d => "GPP010",
            Code::DeadD2h => "GPP011",
            Code::MissingResidency => "GPP012",
            Code::HoistableTransfer => "GPP013",
            Code::SerializedTransfer => "GPP014",
        }
    }

    /// Parses a wire name (case-insensitive).
    pub fn parse(s: &str) -> Option<Code> {
        Code::ALL
            .into_iter()
            .find(|c| c.as_str().eq_ignore_ascii_case(s))
    }

    /// The severity a diagnostic of this code carries before any
    /// configuration is applied. GPP005 upgrades itself to `Error` for
    /// *definite* write-write races.
    pub fn default_severity(self) -> Severity {
        match self {
            Code::Structural | Code::OutOfBounds => Severity::Error,
            Code::Uncoalesced | Code::HoistableTransfer | Code::SerializedTransfer => {
                Severity::Note
            }
            _ => Severity::Warning,
        }
    }
}

impl std::fmt::Display for Code {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How much a diagnostic matters. `Error` makes `gpp lint` exit nonzero
/// and `gpp-serve` reject the request; `Note` is purely informational
/// and unaffected by `--deny warnings`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The skeleton is wrong; projections from it are meaningless.
    Error,
    /// Probably a mistake, but analysis can proceed.
    Warning,
    /// A performance observation, not a defect.
    Note,
}

impl Severity {
    /// Lower-case wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        }
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding, anchored to the `.gsk` source when a [`Span`] is known.
/// Programs built through the API carry no spans; their diagnostics
/// report `Span::none()`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Effective severity (after [`LintConfig::apply`]).
    pub severity: Severity,
    /// Human-readable description of this specific finding.
    pub message: String,
    /// Anchor in the `.gsk` source; `Span::none()` when unknown.
    pub span: Span,
    /// A machine-applicable rewrite that resolves the finding, when one
    /// exists (`gpp lint --fix` applies these).
    pub fix: Option<crate::fixit::FixIt>,
}

impl Diagnostic {
    /// A diagnostic at the code's default severity.
    pub fn new(code: Code, span: Span, message: String) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.default_severity(),
            message,
            span,
            fix: None,
        }
    }

    /// A diagnostic with an explicit severity (e.g. a *definite* race).
    pub fn with_severity(
        code: Code,
        severity: Severity,
        span: Span,
        message: String,
    ) -> Diagnostic {
        Diagnostic {
            code,
            severity,
            message,
            span,
            fix: None,
        }
    }

    /// Attaches a machine-applicable fix-it.
    pub fn with_fix(mut self, fix: crate::fixit::FixIt) -> Diagnostic {
        self.fix = Some(fix);
        self
    }
}

/// Per-code severity policy, mirroring `rustc`'s `-A`/`-D` flags.
///
/// Precedence: `allow(code)` removes the diagnostic entirely (except
/// GPP000, which cannot be silenced), `deny(code)` escalates it to an
/// error, and `deny_warnings` escalates every remaining warning. Notes
/// are only affected by an explicit `deny(code)`.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    /// Treat all warnings as errors (`--deny warnings`).
    pub deny_warnings: bool,
    denied: BTreeSet<Code>,
    allowed: BTreeSet<Code>,
}

impl LintConfig {
    /// The default policy: report everything at its natural severity.
    pub fn new() -> LintConfig {
        LintConfig::default()
    }

    /// Escalates every diagnostic of `code` to an error.
    pub fn deny(&mut self, code: Code) {
        self.denied.insert(code);
    }

    /// Suppresses every diagnostic of `code`. GPP000 is ignored here:
    /// structural errors cannot be allowed away.
    pub fn allow(&mut self, code: Code) {
        self.allowed.insert(code);
    }

    /// Applies the policy: filter, re-severity, and sort by source
    /// position (then code) so output is deterministic.
    pub fn apply(&self, mut diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
        diags.retain(|d| d.code == Code::Structural || !self.allowed.contains(&d.code));
        for d in &mut diags {
            if self.denied.contains(&d.code)
                || (self.deny_warnings && d.severity == Severity::Warning)
            {
                d.severity = Severity::Error;
            }
        }
        diags.sort_by(|a, b| {
            (a.span.line, a.span.col, a.code).cmp(&(b.span.line, b.span.col, b.code))
        });
        diags
    }
}

/// The outcome of linting one file (or one in-memory program).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintReport {
    /// The file name diagnostics are reported against.
    pub file: String,
    /// Findings, sorted by source position.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Number of error-severity diagnostics.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-severity diagnostics.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// Number of note-severity diagnostics.
    pub fn notes(&self) -> usize {
        self.count(Severity::Note)
    }

    /// True if any diagnostic is an error.
    pub fn has_errors(&self) -> bool {
        self.errors() > 0
    }

    /// True if nothing at all was found.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    fn count(&self, s: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == s).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip_and_order() {
        // GPP009 is reserved: numbers ascend but skip it.
        let numbers = [0, 1, 2, 3, 4, 5, 6, 7, 8, 10, 11, 12, 13, 14];
        assert_eq!(Code::ALL.len(), numbers.len());
        for (n, c) in numbers.into_iter().zip(Code::ALL) {
            assert_eq!(c.as_str(), format!("GPP{n:03}"));
            assert_eq!(Code::parse(c.as_str()), Some(c));
            assert_eq!(Code::parse(&c.as_str().to_lowercase()), Some(c));
        }
        assert_eq!(Code::parse("GPP009"), None);
        assert_eq!(Code::parse("GPP999"), None);
        assert_eq!(Code::parse("warnings"), None);
    }

    #[test]
    fn config_precedence() {
        let d = |code: Code| Diagnostic::new(code, Span::none(), "x".into());
        let mut cfg = LintConfig::new();
        cfg.deny_warnings = true;
        cfg.deny(Code::Uncoalesced);
        cfg.allow(Code::UnusedArray);
        cfg.allow(Code::Structural); // must have no effect
        let out = cfg.apply(vec![
            d(Code::UnusedArray),
            d(Code::Uncoalesced),
            d(Code::DeadWrite),
            d(Code::Structural),
        ]);
        // UnusedArray removed; the rest all escalate to errors except…
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|d| d.severity == Severity::Error));
        assert!(out.iter().any(|d| d.code == Code::Structural));
    }

    #[test]
    fn notes_survive_deny_warnings() {
        let mut cfg = LintConfig::new();
        cfg.deny_warnings = true;
        let out = cfg.apply(vec![Diagnostic::new(
            Code::Uncoalesced,
            Span::none(),
            "stride".into(),
        )]);
        assert_eq!(out[0].severity, Severity::Note);
    }

    #[test]
    fn apply_sorts_by_position() {
        let at = |line, col, code| Diagnostic::new(code, Span { line, col, len: 1 }, "m".into());
        let cfg = LintConfig::new();
        let out = cfg.apply(vec![
            at(9, 1, Code::DeadWrite),
            at(2, 7, Code::UnusedArray),
            at(2, 7, Code::OutOfBounds),
        ]);
        let order: Vec<Code> = out.iter().map(|d| d.code).collect();
        assert_eq!(
            order,
            vec![Code::OutOfBounds, Code::UnusedArray, Code::DeadWrite]
        );
    }
}
