//! Property tests for the linter.
//!
//! 1. *Soundness of the error level*: builder-generated programs that are
//!    correct by construction (in-bounds indices, injective writes,
//!    disjoint read/write arrays) never produce error-severity
//!    diagnostics.
//! 2. *Totality*: the linter never panics, even on adversarial (but
//!    structurally valid) random programs, and is deterministic.

use gpp_datausage::Hints;
use gpp_lint::{lint_program, lint_source, LintConfig, Severity};
use gpp_skeleton::builder::ProgramBuilder;
use gpp_skeleton::expr::AffineExpr;
use gpp_skeleton::{ElemType, Flops, IndexExpr, Program};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum ReadIx {
    Var,
    VarPlusOne,
    Scaled3,
    Const5,
    Irregular,
    Bounded(u32),
}

/// Programs that are correct by construction: reads stay in bounds
/// (trips ≤ 8 with offsets ≤ +1 and scale 3 against extent 64), every
/// statement writes a fresh output array indexed by exactly the parallel
/// loops (injective), and read-only inputs are disjoint from outputs.
fn well_formed() -> impl Strategy<Value = Program> {
    let read_ix = prop_oneof![
        Just(ReadIx::Var),
        Just(ReadIx::VarPlusOne),
        Just(ReadIx::Scaled3),
        Just(ReadIx::Const5),
        Just(ReadIx::Irregular),
        Just(ReadIx::Bounded(7)),
    ];
    (
        prop::collection::vec((1usize..3, any::<bool>()), 1..3), // inputs: ndims, sparse
        prop::collection::vec(
            (
                1usize..3, // parallel loops
                0usize..2, // serial loops
                prop::collection::vec(
                    (prop::collection::vec(read_ix.clone(), 0..3), 0u32..5),
                    1..3,
                ), // statements: read kinds + flops
            ),
            1..3,
        ),
    )
        .prop_map(|(inputs, kernels)| {
            let mut p = ProgramBuilder::new("well-formed");
            let ins: Vec<_> = inputs
                .iter()
                .enumerate()
                .map(|(n, (nd, sparse))| {
                    let extents = vec![64usize; *nd];
                    if *sparse {
                        p.sparse_array(format!("in{n}"), ElemType::F32, &extents)
                    } else {
                        p.array(format!("in{n}"), ElemType::F32, &extents)
                    }
                })
                .collect();
            let in_dims: Vec<usize> = inputs.iter().map(|(nd, _)| *nd).collect();
            // Outputs are created up front, one per (kernel, statement).
            let mut outs = Vec::new();
            for (ki, (npar, _, stmts)) in kernels.iter().enumerate() {
                for si in 0..stmts.len() {
                    outs.push(p.array(
                        format!("out{ki}_{si}"),
                        ElemType::F32,
                        &vec![64usize; *npar],
                    ));
                }
            }
            let mut out_iter = outs.into_iter();
            for (ki, (npar, nser, stmts)) in kernels.into_iter().enumerate() {
                let mut k = p.kernel(format!("k{ki}"));
                let mut par = Vec::new();
                let mut all = Vec::new();
                for l in 0..npar {
                    let id = k.parallel_loop(format!("p{l}"), 8);
                    par.push(id);
                    all.push(id);
                }
                for l in 0..nser {
                    all.push(k.serial_loop(format!("s{l}"), 4));
                }
                for (reads, flops) in stmts {
                    let mut s = k.statement().flops(Flops {
                        adds: flops,
                        ..Flops::default()
                    });
                    for (ri, kind) in reads.into_iter().enumerate() {
                        let arr = ins[ri % ins.len()];
                        let nd = in_dims[ri % ins.len()];
                        let ix: Vec<IndexExpr> = (0..nd)
                            .map(|d| {
                                let lid = all[d % all.len()];
                                match kind {
                                    ReadIx::Var => IndexExpr::Affine(AffineExpr::var(lid)),
                                    ReadIx::VarPlusOne => {
                                        IndexExpr::Affine(AffineExpr::var(lid) + 1)
                                    }
                                    ReadIx::Scaled3 => {
                                        IndexExpr::Affine(AffineExpr::scaled(lid, 3, 0))
                                    }
                                    ReadIx::Const5 => IndexExpr::Affine(AffineExpr::constant(5)),
                                    ReadIx::Irregular => IndexExpr::Irregular,
                                    ReadIx::Bounded(sp) => IndexExpr::IrregularBounded(sp),
                                }
                            })
                            .collect();
                        s = s.read_ix(arr, &ix);
                    }
                    let out = out_iter.next().unwrap();
                    let widx: Vec<IndexExpr> = par
                        .iter()
                        .map(|&l| IndexExpr::Affine(AffineExpr::var(l)))
                        .collect();
                    s.write_ix(out, &widx).finish();
                }
                k.finish();
            }
            p.build().expect("well-formed program validates")
        })
}

/// Adversarial but structurally valid programs: arbitrary offsets,
/// scales, shared arrays, irregular writes — everything the passes must
/// survive.
fn any_program() -> impl Strategy<Value = Program> {
    let index = prop_oneof![
        Just(ReadIx::Var),
        Just(ReadIx::VarPlusOne),
        Just(ReadIx::Scaled3),
        Just(ReadIx::Const5),
        Just(ReadIx::Irregular),
        Just(ReadIx::Bounded(7)),
    ];
    (
        prop::collection::vec((1usize..3, any::<bool>(), any::<bool>()), 1..4),
        prop::collection::vec(
            (
                1usize..3,
                0usize..2,
                prop::collection::vec(
                    (
                        prop::collection::vec((index.clone(), any::<bool>(), -2i64..3), 1..4),
                        0u32..9,
                    ),
                    1..3,
                ),
            ),
            1..3,
        ),
    )
        .prop_map(|(arrays, kernels)| {
            let mut p = ProgramBuilder::new("adversarial");
            let ids: Vec<_> = arrays
                .iter()
                .enumerate()
                .map(|(n, (nd, sparse, temp))| {
                    let extents = vec![32usize; *nd];
                    if *sparse {
                        p.sparse_array(format!("a{n}"), ElemType::F64, &extents)
                    } else if *temp {
                        p.temporary_array(format!("a{n}"), ElemType::F64, &extents)
                    } else {
                        p.array(format!("a{n}"), ElemType::F64, &extents)
                    }
                })
                .collect();
            let dims: Vec<usize> = arrays.iter().map(|(nd, _, _)| *nd).collect();
            for (ki, (npar, nser, stmts)) in kernels.into_iter().enumerate() {
                let mut k = p.kernel(format!("k{ki}"));
                let mut loops = Vec::new();
                for l in 0..npar {
                    loops.push(k.parallel_loop(format!("p{l}"), 16));
                }
                for l in 0..nser {
                    loops.push(k.serial_loop(format!("s{l}"), 4));
                }
                for (refs, flops) in stmts {
                    let mut s = k.statement().flops(Flops {
                        muls: flops,
                        ..Flops::default()
                    });
                    for (ri, (kind, is_write, off)) in refs.into_iter().enumerate() {
                        let arr = ids[ri % ids.len()];
                        let nd = dims[ri % ids.len()];
                        let ix: Vec<IndexExpr> = (0..nd)
                            .map(|d| {
                                let lid = loops[d % loops.len()];
                                match kind {
                                    ReadIx::Var => IndexExpr::Affine(AffineExpr::var(lid) + off),
                                    ReadIx::VarPlusOne => {
                                        IndexExpr::Affine(AffineExpr::var(lid) + 1)
                                    }
                                    ReadIx::Scaled3 => {
                                        IndexExpr::Affine(AffineExpr::scaled(lid, 3, off))
                                    }
                                    ReadIx::Const5 => IndexExpr::Affine(AffineExpr::constant(5)),
                                    ReadIx::Irregular => IndexExpr::Irregular,
                                    ReadIx::Bounded(sp) => IndexExpr::IrregularBounded(sp),
                                }
                            })
                            .collect();
                        s = if is_write {
                            s.write_ix(arr, &ix)
                        } else {
                            s.read_ix(arr, &ix)
                        };
                    }
                    s.finish();
                }
                k.finish();
            }
            p.build().expect("structurally valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Programs correct by construction never lint at error level.
    #[test]
    fn well_formed_programs_have_no_errors(p in well_formed()) {
        let diags = lint_program(&p, None, &Hints::for_program(&p));
        prop_assert!(
            diags.iter().all(|d| d.severity != Severity::Error),
            "spurious errors: {:?}",
            diags.iter().filter(|d| d.severity == Severity::Error).collect::<Vec<_>>()
        );
    }

    /// The linter is total and deterministic over adversarial programs,
    /// and agrees with itself through the text roundtrip.
    #[test]
    fn linter_never_panics_and_is_deterministic(p in any_program()) {
        let hints = Hints::for_program(&p);
        let a = lint_program(&p, None, &hints);
        let b = lint_program(&p, None, &hints);
        prop_assert_eq!(&a, &b);
        // Through the text pipeline: same codes (spans differ: text
        // parsing attaches real positions).
        let src = gpp_skeleton::text::to_text(&p);
        let report = lint_source(&src, "roundtrip.gsk", &LintConfig::new());
        let mut codes_mem: Vec<_> = a.iter().map(|d| d.code).collect();
        let mut codes_src: Vec<_> = report.diagnostics.iter().map(|d| d.code).collect();
        codes_mem.sort_unstable();
        codes_src.sort_unstable();
        prop_assert_eq!(codes_mem, codes_src);
    }
}
