//! Fix-it round-trip properties, and the projector-level contract
//! behind `transfer_headroom`:
//!
//! 1. For any explicit transfer schedule, applying fixes to a fixpoint
//!    converges, the result still parses, it re-lints clean of the
//!    whole GPP010–GPP013 family, and a second pass is byte-for-byte
//!    idempotent.
//! 2. A move-only fix (GPP013) cannot change the projection: total
//!    time is bit-identical on every committed machine.
//! 3. A traffic-removing fix (GPP010) yields positive headroom on
//!    every committed machine, and the reported headroom equals the
//!    projector-measured delta exactly.

use gpp_datausage::Hints;
use gpp_lint::{apply_fixes, lint_source, Code, LintConfig};
use grophecy::projector::Grophecy;
use grophecy::{transfer_headroom, MachineRegistry};
use proptest::prelude::*;
use std::path::{Path, PathBuf};

const FAMILY: [Code; 4] = [
    Code::CrossKernelH2d,
    Code::DeadD2h,
    Code::MissingResidency,
    Code::HoistableTransfer,
];

/// Mirrors `gpp lint --fix`: apply, re-lint, repeat until quiescent.
fn fixpoint(src: &str) -> (String, usize) {
    let cfg = LintConfig::new();
    let mut cur = src.to_string();
    let mut total = 0usize;
    for _ in 0..16 {
        let report = lint_source(&cur, "p.gsk", &cfg);
        let (next, n) = apply_fixes(&cur, &report.diagnostics);
        if n == 0 {
            break;
        }
        cur = next;
        total += n;
    }
    (cur, total)
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Built-ins plus every committed `.gmach` datasheet.
fn committed_machines() -> MachineRegistry {
    let mut r = MachineRegistry::builtin();
    r.load_dir(&repo_root().join("fixtures/machines"))
        .expect("committed machine corpus loads");
    r
}

fn total_time_bits(reg: &MachineRegistry, src: &str) -> Vec<(String, u64)> {
    let p = gpp_skeleton::text::parse(src).expect("parses");
    let hints = Hints::for_program(&p);
    reg.names()
        .into_iter()
        .map(|name| {
            let cfg = reg.config(&name, 7).unwrap();
            let mut node = cfg.node();
            let gro = Grophecy::calibrate(&cfg, &mut node);
            let t = gro.project(&p, &hints).total_time(1);
            (name, t.to_bits())
        })
        .collect()
}

/// A random explicit transfer schedule wrapped around a fixed two-kernel
/// pipeline (`k1: a → b`, `k2: b → c`). Any combination of directions,
/// arrays, and positions is structurally valid.
fn random_schedule() -> impl Strategy<Value = String> {
    prop::collection::vec((0usize..=2, any::<bool>(), 0usize..3), 1..7).prop_map(|xfers| {
        let arrays = ["a", "b", "c"];
        let mut by_pos: [Vec<String>; 3] = Default::default();
        for (pos, h2d, ai) in xfers {
            let dir = if h2d { "h2d" } else { "d2h" };
            by_pos[pos].push(format!("{dir} {}\n", arrays[ai]));
        }
        let mut s =
            String::from("program rand\narray a f32 [64]\narray b f32 [64]\narray c f32 [64]\n");
        s.push_str(&by_pos[0].concat());
        s.push_str("kernel k1\n  parallel i 64\n  stmt adds=1\n    read  a [i]\n    write b [i]\n");
        s.push_str(&by_pos[1].concat());
        s.push_str("kernel k2\n  parallel i 64\n  stmt adds=1\n    read  b [i]\n    write c [i]\n");
        s.push_str(&by_pos[2].concat());
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fixes_converge_relint_clean_and_stay_idempotent(src in random_schedule()) {
        let (fixed, _) = fixpoint(&src);
        // The rewrite is still a valid skeleton.
        prop_assert!(gpp_skeleton::text::parse(&fixed).is_ok(), "{fixed}");
        // The whole transfer-dataflow family is quiesced.
        let report = lint_source(&fixed, "p.gsk", &LintConfig::new());
        for d in &report.diagnostics {
            prop_assert!(!FAMILY.contains(&d.code), "{:?} survived in:\n{fixed}", d.code);
        }
        // And a second fixpoint run is a byte-for-byte no-op.
        let (fixed2, n2) = fixpoint(&fixed);
        prop_assert_eq!(n2, 0);
        prop_assert_eq!(fixed2, fixed);
    }
}

#[test]
fn move_only_fix_preserves_projection_bits_on_every_machine() {
    let path = repo_root().join("fixtures/bad/gpp013_program_hoist.gsk");
    let src = std::fs::read_to_string(path).unwrap();
    let (fixed, n) = fixpoint(&src);
    assert!(n > 0 && fixed != src);
    let reg = committed_machines();
    assert!(
        reg.len() >= 4,
        "expected built-ins + committed .gmach files"
    );
    assert_eq!(
        total_time_bits(&reg, &src),
        total_time_bits(&reg, &fixed),
        "a hoist must not change the projection"
    );
}

#[test]
fn redundant_upload_fixture_has_projector_exact_headroom() {
    let path = repo_root().join("fixtures/bad/gpp010_program_reupload.gsk");
    let src = std::fs::read_to_string(path).unwrap();
    let (fixed, n) = fixpoint(&src);
    assert!(n > 0);
    let reg = committed_machines();
    let as_written = gpp_skeleton::text::parse(&src).unwrap();
    let optimized = gpp_skeleton::text::parse(&fixed).unwrap();
    let rows = transfer_headroom(&reg, 7, &as_written, &optimized);
    assert_eq!(rows.len(), reg.len());
    for r in &rows {
        assert!(r.headroom() > 0.0, "{}: zero headroom", r.machine);
        // The report is the projector delta by definition — recompute it
        // independently and demand bit-level agreement.
        let cfg = reg.config(&r.machine, 7).unwrap();
        let mut node = cfg.node();
        let gro = Grophecy::calibrate(&cfg, &mut node);
        let w = gro
            .project(&as_written, &Hints::for_program(&as_written))
            .total_time(1);
        let o = gro
            .project(&optimized, &Hints::for_program(&optimized))
            .total_time(1);
        assert_eq!(
            r.headroom().to_bits(),
            (w - o).max(0.0).to_bits(),
            "{}",
            r.machine
        );
    }
}
