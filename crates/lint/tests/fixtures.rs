//! Golden-snapshot tests over the `fixtures/bad/` corpus: every
//! diagnostic code has one skeleton that demonstrates it, and both
//! renderers are pinned byte-for-byte. Regenerate the snapshots with
//! `UPDATE_GOLDEN=1 cargo test -p gpp-lint --test fixtures`.

use gpp_lint::{lint_source, render_human, render_json, Code, LintConfig, Severity};
use std::fs;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn fixtures() -> Vec<PathBuf> {
    let dir = repo_root().join("fixtures/bad");
    let mut files: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read {}: {e}", dir.display()))
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "gsk"))
        .collect();
    files.sort();
    // One fixture per diagnostic code, plus the stream-suppression case
    // (`gpp013_program_hoist_streams`) pinning that annotated transfers
    // are exempt.
    assert_eq!(files.len(), 15, "fixture corpus changed size");
    files
}

/// The code a fixture demonstrates, from its `gppNNN_…` name.
fn expected_code(path: &Path) -> Code {
    let name = path.file_name().unwrap().to_str().unwrap();
    Code::parse(&name[..6].to_uppercase()).unwrap_or_else(|| panic!("bad fixture name {name}"))
}

fn check_golden(path: &Path, actual: &str) {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::write(path, actual).unwrap();
        return;
    }
    let want = fs::read_to_string(path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        actual,
        want,
        "output drifted from {}; rerun with UPDATE_GOLDEN=1 and review the diff",
        path.display()
    );
}

#[test]
fn every_code_has_a_demonstrating_fixture() {
    let mut seen = Vec::new();
    for f in fixtures() {
        let code = expected_code(&f);
        let src = fs::read_to_string(&f).unwrap();
        let report = lint_source(
            &src,
            f.file_name().unwrap().to_str().unwrap(),
            &LintConfig::new(),
        );
        assert!(
            report.diagnostics.iter().any(|d| d.code == code),
            "{}: expected {code}, got {:?}",
            f.display(),
            report.diagnostics
        );
        // Every diagnostic is anchored to a real source line.
        for d in &report.diagnostics {
            assert!(d.span.is_real(), "{}: unspanned {d:?}", f.display());
        }
        // And apart from GPP000 (which collects several structural
        // errors), a fixture triggers exactly its own code — keeping the
        // corpus a precise, minimal example per lint.
        if code != Code::Structural {
            assert!(
                report.diagnostics.iter().all(|d| d.code == code),
                "{}: extra diagnostics {:?}",
                f.display(),
                report.diagnostics
            );
        }
        seen.push(code);
    }
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen, Code::ALL.to_vec());
}

#[test]
fn fixture_spans_point_at_the_culprit() {
    let root = repo_root();
    let case = |file: &str, line: usize, col: usize| {
        let path = root.join("fixtures/bad").join(file);
        let src = fs::read_to_string(&path).unwrap();
        let report = lint_source(&src, file, &LintConfig::new());
        let code = expected_code(&path);
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == code)
            .unwrap_or_else(|| panic!("{file}: no {code}"));
        assert_eq!(
            (d.span.line, d.span.col),
            (line, col),
            "{file}: {code} anchored at {}",
            d.span
        );
    };
    case("gpp001_oob.gsk", 10, 5); // read  a [i+1]
    case("gpp002_uninit_read.gsk", 10, 5); // read  scratch [i]
    case("gpp003_dead_write.gsk", 11, 5); // write x [i] (kernel first)
    case("gpp004_unused_array.gsk", 5, 1); // array ghost …
    case("gpp005_race.gsk", 11, 5); // write y [0]
    case("gpp006_redundant_h2d.gsk", 15, 5); // read  tmp [i]
    case("gpp007_missing_temporary.gsk", 6, 1); // array coeff …
    case("gpp008_uncoalesced.gsk", 10, 5); // read  m [i, 0]
    case("gpp010_program_reupload.gsk", 11, 1); // second h2d a
    case("gpp011_program_dead_d2h.gsk", 10, 1); // first d2h b
    case("gpp012_program_roundtrip.gsk", 11, 1); // d2h t of the pair
    case("gpp013_program_hoist.gsk", 12, 1); // late h2d b
    case("gpp013_program_hoist_streams.gsk", 13, 1); // sync h2d b; async h2d e exempt
    case("gpp014_program_serialized.gsk", 4, 1); // 4 MB sync h2d a
}

#[test]
fn golden_snapshots_human_and_json() {
    for f in fixtures() {
        let src = fs::read_to_string(&f).unwrap();
        let name = f.file_name().unwrap().to_str().unwrap().to_string();
        let report = lint_source(&src, &name, &LintConfig::new());
        check_golden(
            &f.with_extension("gsk.expected"),
            &render_human(&report, Some(&src)),
        );
        let mut json = render_json(&report);
        json.push('\n');
        check_golden(&f.with_extension("gsk.expected.json"), &json);
    }
}

#[test]
fn deny_warnings_fails_every_defect_fixture() {
    let mut cfg = LintConfig::new();
    cfg.deny_warnings = true;
    for f in fixtures() {
        let src = fs::read_to_string(&f).unwrap();
        let report = lint_source(&src, "f", &cfg);
        let code = expected_code(&f);
        if code.default_severity() == Severity::Note {
            // Notes (GPP008, GPP013) are advisory: they never fail the
            // build unless explicitly denied.
            assert!(
                !report.has_errors(),
                "{}: {:?}",
                f.display(),
                report.diagnostics
            );
            let mut deny = LintConfig::new();
            deny.deny(code);
            assert!(lint_source(&src, "f", &deny).has_errors());
        } else {
            assert!(
                report.has_errors(),
                "{}: {:?}",
                f.display(),
                report.diagnostics
            );
        }
    }
}

#[test]
fn program_fixture_fixes_relint_clean_and_are_idempotent() {
    let transfer_codes = [
        Code::CrossKernelH2d,
        Code::DeadD2h,
        Code::MissingResidency,
        Code::HoistableTransfer,
        Code::SerializedTransfer,
    ];
    let cfg = LintConfig::new();
    let mut checked = 0;
    for f in fixtures() {
        let name = f.file_name().unwrap().to_str().unwrap().to_string();
        if !transfer_codes.contains(&expected_code(&f)) {
            continue;
        }
        let src = fs::read_to_string(&f).unwrap();
        let report = lint_source(&src, &name, &cfg);
        let (fixed, n) = gpp_lint::apply_fixes(&src, &report.diagnostics);
        assert!(n > 0, "{name}: fixture carries no fix");
        // The fixed text re-lints clean of the whole pass family…
        let report2 = lint_source(&fixed, &name, &cfg);
        assert!(
            report2
                .diagnostics
                .iter()
                .all(|d| !transfer_codes.contains(&d.code)),
            "{name} after fix:\n{}",
            render_human(&report2, Some(&fixed))
        );
        // …and a second pass is a byte-for-byte no-op.
        let (fixed2, n2) = gpp_lint::apply_fixes(&fixed, &report2.diagnostics);
        assert_eq!(n2, 0, "{name}: second --fix pass still had work");
        assert_eq!(fixed2, fixed, "{name}: fix is not idempotent");
        checked += 1;
    }
    assert_eq!(checked, 6, "one fix round-trip per GPP010–GPP014 fixture");
}

#[test]
fn committed_skeletons_lint_clean_under_deny_warnings() {
    let dir = repo_root().join("skeletons");
    let mut cfg = LintConfig::new();
    cfg.deny_warnings = true;
    let mut checked = 0;
    for entry in fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|x| x != "gsk") {
            continue;
        }
        let src = fs::read_to_string(&path).unwrap();
        let report = lint_source(&src, path.to_str().unwrap(), &cfg);
        assert!(
            !report.has_errors(),
            "{}:\n{}",
            path.display(),
            render_human(&report, Some(&src))
        );
        // No warnings hide behind the gate either.
        assert_eq!(
            report
                .diagnostics
                .iter()
                .filter(|d| d.severity != Severity::Note)
                .count(),
            0,
            "{}: {:?}",
            path.display(),
            report.diagnostics
        );
        checked += 1;
    }
    assert!(checked >= 3, "skeleton corpus went missing");
}
