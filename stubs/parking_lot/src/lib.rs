//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::{Mutex, RwLock, Condvar}` behind parking_lot's
//! ergonomics: `lock()`/`read()`/`write()` return guards directly (no
//! `Result`), and poisoning is transparently ignored — a panicked holder
//! does not wedge the lock, matching parking_lot's semantics as closely
//! as std allows.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;
use std::time::Duration;

/// A mutual exclusion primitive (std-backed, poison-free API).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: e.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A reader-writer lock (std-backed, poison-free API).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Condition variable usable with [`Mutex`] guards.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        take_guard(&mut guard.inner, |g| {
            self.inner.wait(g).unwrap_or_else(|e| e.into_inner())
        });
    }

    /// Returns `true` if the wait timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let mut timed_out = false;
        take_guard(&mut guard.inner, |g| {
            match self.inner.wait_timeout(g, timeout) {
                Ok((g, t)) => {
                    timed_out = t.timed_out();
                    g
                }
                Err(e) => e.into_inner().0,
            }
        });
        timed_out
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Runs `f` on an owned std guard, then puts the result back. The
/// `unreachable` placeholder never escapes: `f` always returns a guard.
fn take_guard<'a, T>(
    slot: &mut sync::MutexGuard<'a, T>,
    f: impl FnOnce(sync::MutexGuard<'a, T>) -> sync::MutexGuard<'a, T>,
) {
    // Safety-free trick: std's wait() consumes the guard, but we only have
    // `&mut`. Use a two-step replace with ManuallyDrop semantics via Option.
    replace_with(slot, f);
}

fn replace_with<'a, T>(
    slot: &mut sync::MutexGuard<'a, T>,
    f: impl FnOnce(sync::MutexGuard<'a, T>) -> sync::MutexGuard<'a, T>,
) {
    // If `f` unwound after consuming the guard, `slot` would be read twice;
    // abort instead (the closures used here never panic — poison is mapped
    // to `into_inner` first).
    struct Bomb;
    impl Drop for Bomb {
        fn drop(&mut self) {
            std::process::abort();
        }
    }
    unsafe {
        let old = std::ptr::read(slot);
        let bomb = Bomb;
        let new = f(old);
        std::mem::forget(bomb);
        std::ptr::write(slot, new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);

        let rw = RwLock::new(vec![1, 2]);
        assert_eq!(rw.read().len(), 2);
        rw.write().push(3);
        assert_eq!(*rw.read(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_lock_still_usable() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn condvar_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let t = thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut g = m.lock();
            *g = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            cv.wait(&mut g);
        }
        assert!(*g);
        t.join().unwrap();
    }
}
