//! Offline stand-in for `crossbeam`.
//!
//! Two submodules, matching the subset of crossbeam this workspace uses:
//!
//! * [`thread`] — `scope`/`Scope::spawn` with crossbeam's signature (the
//!   spawn closure receives `&Scope`, and `scope` returns `Err` when a
//!   child panicked), implemented over `std::thread::scope`.
//! * [`channel`] — a multi-producer multi-consumer bounded channel with
//!   `send`/`try_send`/`recv`/`recv_timeout` and disconnect semantics,
//!   implemented with `Mutex` + `Condvar`. Not lock-free; plenty for the
//!   request queue of `gpp-serve` where each item is a TCP connection.

pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Scope handle passed to [`scope`] closures and child threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped child thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the child and returns its result (`Err` on panic).
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives this scope so it
        /// can spawn further children (crossbeam's signature).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Creates a scope for spawning borrowing threads. Unlike
    /// `std::thread::scope`, a panicking child makes this return `Err`
    /// instead of propagating the panic.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        cap: usize,
        senders: usize,
        receivers: usize,
    }

    /// Sending half; clonable (multi-producer).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; clonable (multi-consumer).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error for [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// All receivers dropped.
        Disconnected(T),
    }

    /// Error for [`Sender::send`]: all receivers dropped.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error for [`Receiver::recv`]: channel empty and all senders dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error for [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No item arrived in time.
        Timeout,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            "receiving on an empty and disconnected channel".fmt(f)
        }
    }
    impl std::error::Error for RecvError {}

    /// Creates a bounded MPMC channel with capacity `cap` (≥ 1).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let cap = cap.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::with_capacity(cap),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Non-blocking send; `Err(Full)` applies backpressure.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut st = self.shared.queue.lock().unwrap();
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if st.items.len() >= st.cap {
                return Err(TrySendError::Full(value));
            }
            st.items.push_back(value);
            drop(st);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Blocking send; waits for space.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.queue.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                if st.items.len() < st.cap {
                    st.items.push_back(value);
                    drop(st);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                st = self.shared.not_full.wait(st).unwrap();
            }
        }

        /// Items currently queued.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap().items.len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Blocking receive; `Err` once empty and all senders dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = st.items.pop_front() {
                    drop(st);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.not_empty.wait(st).unwrap();
            }
        }

        /// Receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = st.items.pop_front() {
                    drop(st);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (g, _timeout) = self
                    .shared
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .unwrap();
                st = g;
            }
        }

        /// Non-blocking receive; `None` when empty (regardless of senders).
        pub fn try_recv(&self) -> Option<T> {
            let mut st = self.shared.queue.lock().unwrap();
            let v = st.items.pop_front();
            if v.is_some() {
                drop(st);
                self.shared.not_full.notify_one();
            }
            v
        }

        /// Items currently queued.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap().items.len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.queue.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                // Wake all blocked receivers so they observe disconnect.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.queue.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                self.shared.not_full.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, RecvTimeoutError, TrySendError};
    use std::time::Duration;

    #[test]
    fn scoped_threads_spawn_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = super::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn scope_reports_child_panic_as_err() {
        let r = super::thread::scope(|s| {
            s.spawn(|_| panic!("child dies"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn bounded_backpressure_and_disconnect() {
        let (tx, rx) = bounded::<u32>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn mpmc_many_producers_consumers() {
        let (tx, rx) = bounded::<usize>(4);
        let n_prod = 4;
        let per = 100;
        let got = super::thread::scope(|s| {
            for p in 0..n_prod {
                let tx = tx.clone();
                s.spawn(move |_| {
                    for i in 0..per {
                        tx.send(p * per + i).unwrap();
                    }
                });
            }
            drop(tx);
            let consumers: Vec<_> = (0..3)
                .map(|_| {
                    let rx = rx.clone();
                    s.spawn(move |_| {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            let mut all: Vec<usize> = consumers
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect();
            all.sort_unstable();
            all
        })
        .unwrap();
        assert_eq!(got, (0..n_prod * per).collect::<Vec<_>>());
    }
}
