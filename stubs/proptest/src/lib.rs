//! Offline stand-in for `proptest`.
//!
//! Implements the subset of proptest this workspace's property tests use:
//!
//! * the [`Strategy`] trait with `prop_map`, `boxed`, and implementations
//!   for integer/float `Range`/`RangeInclusive`, tuples (arity 2–8),
//!   [`Just`], `any::<bool>()`, and `prop::collection::vec`;
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//!   `prop_assert!`/`prop_assert_eq!`, and `prop_oneof!`;
//! * [`ProptestConfig::with_cases`].
//!
//! Differences from the real crate: no shrinking (a failing case reports
//! its seed and iteration index instead of a minimized input), and value
//! generation is a simple seeded xorshift rather than a recursive tree.
//! Determinism: every test function derives its seed from the test name,
//! or from `PROPTEST_SEED` if set, so failures replay exactly.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// Runner configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test function.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Failure value for the `Result` context property-test bodies run in.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property does not hold.
    Fail(String),
    /// The generated input should be skipped.
    Reject(String),
}

impl TestCaseError {
    /// A failed property with an explanation.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (skipped) input.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Deterministic generator handed to strategies (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x5bf0_3635_16f5_5a4d,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A reference-counted type-erased strategy; cheap to clone.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Uniform choice among equally-weighted strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Always generates (a clone of) one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

/// Whole-`bool` strategy.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// The canonical strategy for `T`'s whole domain.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Element-count specification for [`vec`]: a fixed size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let n = self.size.lo + (rng.next_u64() % span.max(1)) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `prop::` namespace, mirroring the real crate's layout.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Derives the per-test seed: `PROPTEST_SEED` env override, else a stable
/// hash of the test function's name.
pub fn seed_for(test_name: &str) -> u64 {
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(n) = s.trim().parse::<u64>() {
            return n;
        }
    }
    // FNV-1a.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs `body` for `config.cases` seeded cases, labeling any panic with
/// the case index and seed so it can be replayed.
pub fn run_cases(test_name: &str, config: &ProptestConfig, mut body: impl FnMut(&mut TestRng)) {
    let seed = seed_for(test_name);
    for case in 0..config.cases.max(1) {
        let mut rng = TestRng::new(seed ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = result {
            eprintln!(
                "proptest case failed: test={test_name} case={case} seed={seed} \
                 (set PROPTEST_SEED={seed} to replay)"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Defines property tests: seeded random inputs drawn from strategies.
#[macro_export]
macro_rules! proptest {
    // With a config attribute.
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    // Without: default config.
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($config:expr) ) => {};
    (
        ($config:expr)
        $(#[$attr:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            #[allow(unused_imports)]
            use $crate::Strategy as _;
            let config: $crate::ProptestConfig = $config;
            $crate::run_cases(concat!(module_path!(), "::", stringify!($name)), &config, |rng| {
                $(let $arg = ($strat).generate(rng);)+
                // Real proptest bodies run in a Result context so they may
                // `return Ok(())` to reject a case early.
                #[allow(clippy::redundant_closure_call)]
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("property failed: {e}");
                }
            });
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

/// Asserts inside a property test (plain `assert!` under the hood).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ( $($arm:expr),+ $(,)? ) => {{
        #[allow(unused_imports)]
        use $crate::Strategy as _;
        $crate::Union::new(vec![ $( ($arm).boxed() ),+ ])
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_even() -> impl Strategy<Value = i64> {
        (0i64..50).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in -7i64..9, b in 1u8..4, f in 0.5f64..1.5) {
            prop_assert!((-7..9).contains(&a));
            prop_assert!((1..4).contains(&b));
            prop_assert!((0.5..1.5).contains(&f));
        }

        #[test]
        fn combinators_compose(
            v in prop::collection::vec((small_even(), any::<bool>()), 1..5),
            pick in prop_oneof![Just(1u32), Just(2), Just(3)],
        ) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            for (e, _) in &v {
                prop_assert_eq!(e % 2, 0);
            }
            prop_assert!((1..=3).contains(&pick));
        }
    }

    #[test]
    fn seeds_are_stable_per_name() {
        assert_eq!(crate::seed_for("a::b"), crate::seed_for("a::b"));
        assert_ne!(crate::seed_for("a::b"), crate::seed_for("a::c"));
    }
}
