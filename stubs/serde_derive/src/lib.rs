//! Offline stand-in for `serde_derive`.
//!
//! The sanctioned build environment has no registry access, so the real
//! serde is unavailable. The workspace only uses `#[derive(Serialize,
//! Deserialize)]` as metadata (all wire formats in this repo go through
//! the hand-rolled JSON emitter in `grophecy::report`), so the derives
//! can safely expand to nothing: the marker traits in the sibling `serde`
//! stub have a blanket impl.

use proc_macro::TokenStream;

/// Expands to nothing; `serde::Serialize` is blanket-implemented.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; `serde::Deserialize` is blanket-implemented.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
