//! Offline stand-in for `rand` 0.8.
//!
//! Implements exactly the surface this workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen_range, gen_bool, gen}` over
//! integer and float ranges — on top of xoshiro256++ seeded with
//! splitmix64. Deterministic for a given seed, which is all the
//! simulators need (they draw reproducible "measurement noise").
//!
//! Sampling notes: integer ranges use modulo reduction (bias ≤ 2⁻⁴⁰ for
//! the span sizes used here), floats use the standard 53-bit mantissa
//! construction.

use std::ops::{Range, RangeInclusive};

/// Core RNG surface: a source of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, à la `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, à la `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        unit_f64(self.next_u64()) < p
    }

    /// Uniform sample of a whole primitive domain (`bool`, `f64` in [0,1)).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Distribution of the "standard" uniform sample per type.
pub trait Standard {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> f32 {
        unit_f64(rng.next_u64()) as f32
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

fn unit_f64(bits: u64) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range `T` can be uniformly sampled from (mirrors
/// `rand::distributions::uniform::SampleRange<T>` so that range literals
/// infer their element type from the call site, e.g. `let x: f32 =
/// rng.gen_range(0.5..1.5)`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + (unit_f64(rng.next_u64()) as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                lo + (unit_f64(rng.next_u64()) as $t) * (hi - lo)
            }
        }
    )*};
}
float_range!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — fast, high-quality, deterministic.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = r.gen_range(-5i64..17);
            assert!((-5..17).contains(&x));
            let y = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&y));
            let z = r.gen_range(3u64..=9);
            assert!((3..=9).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0 - 1e-16));
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4000..6000).contains(&heads), "badly biased: {heads}");
    }
}
