//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::{bench_function,
//! benchmark_group}`, `BenchmarkGroup::{sample_size, bench_function,
//! bench_with_input, finish}`, `BenchmarkId`, `Bencher::iter` — with a
//! simple wall-clock measurement loop: warm up briefly, then time
//! `sample_size` samples and report min / median / mean.
//!
//! Test-mode compatibility: `cargo test` also executes `harness = false`
//! bench binaries (without the `--bench` flag `cargo bench` passes); in
//! that mode each benchmark runs exactly one iteration so the tier-1
//! suite stays fast. Force full measurement with `CRITERION_FULL=1`.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers work.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_id}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

fn quick_mode() -> bool {
    // `cargo bench` passes `--bench` to harness=false binaries; `cargo
    // test` does not. Only measure for real under `cargo bench` (or when
    // forced), so the tier-1 test suite stays fast.
    let full = std::env::args().any(|a| a == "--bench")
        || std::env::var("CRITERION_FULL").is_ok_and(|v| v == "1");
    !full
}

/// Passed to bench closures; times the measurement routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    quick: bool,
}

impl Bencher {
    /// Runs `routine` repeatedly and records per-iteration wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.quick {
            let start = Instant::now();
            std_black_box(routine());
            self.samples.push(start.elapsed());
            return;
        }
        // Warmup + calibration: target ~10ms per sample batch.
        let start = Instant::now();
        std_black_box(routine());
        let one = start.elapsed().max(Duration::from_nanos(1));
        let per_sample =
            (Duration::from_millis(10).as_nanos() / one.as_nanos()).clamp(1, 10_000) as u32;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                std_black_box(routine());
            }
            self.samples.push(start.elapsed() / per_sample);
        }
    }
}

fn report(name: &str, samples: &[Duration]) {
    let mut s: Vec<Duration> = samples.to_vec();
    if s.is_empty() {
        return;
    }
    s.sort_unstable();
    let min = s[0];
    let median = s[s.len() / 2];
    let mean = s.iter().sum::<Duration>() / s.len() as u32;
    println!("bench {name:<55} min {min:>12.3?}  median {median:>12.3?}  mean {mean:>12.3?}");
}

fn run_one(name: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
        quick: quick_mode(),
    };
    f(&mut b);
    report(name, &b.samples);
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.sample_size, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnOnce(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

/// Groups bench functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_example(c: &mut Criterion) {
        c.bench_function("fib_ish", |b| {
            b.iter(|| (0..100u64).fold(0u64, |a, x| a.wrapping_add(x * x)))
        });
        let mut g = c.benchmark_group("grouped");
        g.sample_size(5);
        g.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    criterion_group!(benches, bench_example);

    #[test]
    fn harness_runs() {
        // No `--bench` flag under the test harness, so this exercises the
        // quick path end to end.
        benches();
    }
}
