//! Offline stand-in for `serde`.
//!
//! The registry is unreachable in the build environment, so this crate
//! provides just enough of serde's surface for the workspace to compile:
//! the `Serialize`/`Deserialize` trait names (blanket-implemented, so
//! bounds like `T: Serialize` are always satisfiable) and the derive
//! macros (which expand to nothing). No serialization is performed —
//! everything machine-readable in this repo goes through the hand-rolled
//! JSON emitter in `grophecy::report`.

/// Marker stand-in for `serde::Serialize`. Blanket-implemented.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`. Blanket-implemented.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

pub mod ser {
    pub use crate::Serialize;
}

// Derive macros live in the macro namespace, the traits above in the type
// namespace — both can be imported with `use serde::{Serialize, ...}`,
// exactly like the real crate.
pub use serde_derive::{Deserialize, Serialize};
