//! HotSpot grid-size and iteration sweep (§IV-B's amortization argument).
//!
//! "As the number of iterations grows, the data transfer overhead is
//! amortized over a larger amount of computation, and the speedup of the
//! GPU over the CPU increases. If we ignore the data transfer time, the
//! speedup is fixed regardless of the iteration count."
//!
//! Also demonstrates the functional side: the same HotSpot algorithm the
//! skeleton describes is executed numerically and checked for physical
//! sanity before any timing is reported.
//!
//! ```text
//! cargo run --release --example hotspot_sweep
//! ```

use gpp_workloads::hotspot::{run, HotSpot, ThermalParams};
use grophecy::machine::MachineConfig;
use grophecy::measurement::measure;
use grophecy::projector::Grophecy;
use grophecy::speedup::SpeedupSeries;

fn main() {
    // Numerics first: run the real algorithm so we trust the skeleton.
    let hs = HotSpot { n: 256 };
    let (temp, power) = hs.initial_state();
    let after = run(&temp, &power, 256, 100, &ThermalParams::default());
    let mean = |g: &[f32]| g.iter().map(|t| *t as f64).sum::<f64>() / g.len() as f64;
    println!(
        "functional check: 100 steps on a 256x256 die, mean temperature {:.2} -> {:.2} C",
        mean(&temp),
        mean(&after)
    );
    assert!(after.iter().all(|t| t.is_finite()), "simulation diverged");

    let machine = MachineConfig::anl_eureka_node(17);
    let mut node = machine.node();
    let gro = Grophecy::calibrate(&machine, &mut node);

    println!("\nGrid-size sweep (1 iteration):");
    println!(
        "{:>12} {:>10} {:>12} {:>10} {:>10}",
        "grid", "kernel(ms)", "transfer(ms)", "pred.x", "meas.x"
    );
    for n in [64usize, 128, 256, 512, 1024, 2048] {
        let hs = HotSpot { n };
        let proj = gro.project(&hs.program(), &hs.hints());
        let meas = measure(&mut node, &hs.program(), &proj);
        println!(
            "{:>12} {:>10.3} {:>12.3} {:>10.2} {:>10.2}",
            hs.label(),
            meas.kernel_time * 1e3,
            meas.transfer_time * 1e3,
            proj.speedup(meas.cpu_time, 1),
            meas.speedup(1),
        );
    }

    println!("\nIteration sweep (1024 x 1024):");
    let hs = HotSpot { n: 1024 };
    let proj = gro.project(&hs.program(), &hs.hints());
    let meas = measure(&mut node, &hs.program(), &proj);
    let series = SpeedupSeries::sweep(
        "HotSpot",
        hs.label(),
        &proj,
        &meas,
        [1, 4, 16, 64, 256, 1024],
    );
    println!(
        "{:>7} {:>10} {:>16} {:>18}",
        "iters", "measured", "pred w/transfer", "pred w/o transfer"
    );
    for p in &series.points {
        println!(
            "{:>7} {:>10.2} {:>16.2} {:>18.2}",
            p.iters, p.measured, p.with_transfer, p.without_transfer
        );
    }
    let lim = SpeedupSeries::limit(&proj, &meas);
    println!(
        "{:>7} {:>10.2} {:>16.2} {:>18.2}",
        "inf", lim.measured, lim.with_transfer, lim.without_transfer
    );
    if let Some(n) = series.twice_as_accurate_until() {
        println!("\ntransfer-aware prediction is >=2x more accurate up to {n} iterations");
    }
}
