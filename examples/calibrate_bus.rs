//! Bus calibration walkthrough: the paper's §III-C synthetic benchmark,
//! run against three "machines" (PCIe generations), with a validation
//! sweep per machine.
//!
//! ```text
//! cargo run --release --example calibrate_bus
//! ```

use gpp_pcie::{Bus, BusParams, BusSimulator, Calibrator, Direction, MemType, SweepValidation};

fn main() {
    for (name, params) in [
        (
            "PCIe v1 x16 (the paper's machine)",
            BusParams::pcie_v1_x16(),
        ),
        ("PCIe v2 x16", BusParams::pcie_v2_x16()),
        ("PCIe v3 x16", BusParams::pcie_v3_x16()),
    ] {
        let mut bus = BusSimulator::new(params, 99);
        println!("=== {name}: {}", bus.describe());

        // The two-point calibration: one tiny transfer for alpha, one huge
        // transfer for beta, ten runs each, per direction.
        let model = Calibrator::default().calibrate(&mut bus);
        println!("  h2d: {}", model.h2d);
        println!("  d2h: {}", model.d2h);
        println!(
            "  latency/bandwidth break-even at {:.0} KB",
            model.h2d.breakeven_bytes() / 1024.0
        );

        // Validate across the full 1 B .. 512 MB sweep (paper §V-A).
        for dir in Direction::ALL {
            let v = SweepValidation::paper_sweep(&mut bus, &model, dir, MemType::Pinned);
            println!(
                "  {dir}: mean error {:.2}%  max {:.2}%  (above 1MB: {:.2}%)",
                v.mean_error(),
                v.max_error(),
                v.mean_error_above(1 << 20)
            );
        }
        println!();
    }
}
