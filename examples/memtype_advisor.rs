//! Pinned-vs-pageable advisor: the paper's future work (§VII), runnable.
//!
//! "In future work we may extend our framework to automatically explore
//! the tradeoff between the two types of memory" — this example does it:
//! dual-calibrate the bus, add allocation costs, and recommend a host
//! memory type per workload and per usage pattern.
//!
//! ```text
//! cargo run --release --example memtype_advisor
//! ```

use gpp_pcie::MemType;
use gpp_workloads::paper_cases;
use grophecy::machine::MachineConfig;
use grophecy::memtype::DualCalibration;

fn main() {
    let machine = MachineConfig::anl_eureka_node(23);
    let mut node = machine.node();
    let cal = DualCalibration::run(&mut node.bus);

    println!("machine: {}", machine.name);
    println!("pinned  : h2d {}", cal.pinned.h2d);
    println!("pageable: h2d {}", cal.pageable.h2d);
    println!();
    println!(
        "{:<9} {:>14} | {:>10} {:>10} | {:>12} {:>12} {:>12}",
        "App", "Data", "pin xfer", "page xfer", "once", "x10", "x1000"
    );

    for case in paper_cases() {
        let plan = gpp_datausage::analyze(&case.program, &case.hints);
        let report = cal.explore(&plan);
        let fmt = |m: MemType| match m {
            MemType::Pinned => "pinned",
            MemType::Pageable => "pageable",
        };
        println!(
            "{:<9} {:>14} | {:>8.2}ms {:>8.2}ms | {:>12} {:>12} {:>12}",
            case.app,
            case.dataset,
            report.pinned_transfer * 1e3,
            report.pageable_transfer * 1e3,
            fmt(report.recommend(1)),
            fmt(report.recommend(10)),
            fmt(report.recommend(1000)),
        );
    }
    println!(
        "\n\"once\" = a single offload session (allocation dominates for small data);\n\
         repeated sessions amortize page-locking, so pinned wins in the limit —\n\
         which is why the paper assumes pinned memory for its iterative workloads."
    );
}
