//! Offload advisor: the paper's motivating use case.
//!
//! "Application developers often ponder the viability of using GPUs to
//! benefit their science and whether it is indeed worth investing the time
//! and effort to port their code" (§II-C). This example runs GROPHECY++
//! over all four evaluation workloads and prints a port / don't-port
//! verdict for each, showing how the kernel-only view (plain GROPHECY)
//! and the transfer-aware view (GROPHECY++) can disagree — Stassuij being
//! the cautionary tale (§V-B-4).
//!
//! ```text
//! cargo run --release --example offload_advisor [iterations]
//! ```

use gpp_workloads::paper_cases;
use grophecy::machine::MachineConfig;
use grophecy::measurement::measure;
use grophecy::projector::Grophecy;

fn main() {
    let iters: u32 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("iterations must be a number"))
        .unwrap_or(1);

    let machine = MachineConfig::anl_eureka_node(7);
    let mut node = machine.node();
    let gro = Grophecy::calibrate(&machine, &mut node);
    println!("advising for: {}  ({iters} iteration(s))\n", machine.name);
    println!(
        "{:<9} {:>14} | {:>12} {:>12} | {:>10} {:>10} | advice",
        "App", "Data", "naive pred", "GROPHECY++", "actual", "correct?"
    );

    let mut naive_right = 0;
    let mut aware_right = 0;
    let mut total = 0;
    for case in paper_cases() {
        let proj = gro.project(&case.program, &case.hints);
        let meas = measure(&mut node, &case.program, &proj);
        let cpu = meas.cpu_total(iters);
        let naive = proj.speedup_kernel_only(cpu, iters);
        let aware = proj.speedup(cpu, iters);
        let actual = meas.speedup(iters);
        let naive_ok = (naive >= 1.0) == (actual >= 1.0);
        let aware_ok = (aware >= 1.0) == (actual >= 1.0);
        naive_right += naive_ok as u32;
        aware_right += aware_ok as u32;
        total += 1;
        println!(
            "{:<9} {:>14} | {:>11.2}x {:>11.2}x | {:>9.2}x {:>10} | {}",
            case.app,
            case.dataset,
            naive,
            aware,
            actual,
            if aware_ok { "yes" } else { "NO" },
            match (aware >= 1.0, naive >= 1.0) {
                (true, _) => "port it",
                (false, true) => "DON'T port (naive view says yes!)",
                (false, false) => "don't port",
            }
        );
    }
    println!(
        "\nport/don't-port verdicts correct: naive {naive_right}/{total}, GROPHECY++ {aware_right}/{total}"
    );
}
