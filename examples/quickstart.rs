//! Quickstart: the paper's §II-B vector-addition story, end to end.
//!
//! Vector addition looks like a perfect GPU workload — massively parallel,
//! and the GPU has 2.4× the CPU's memory bandwidth. GROPHECY++ shows why
//! it isn't: once the input vectors must cross the PCIe bus, the CPU wins
//! by an order of magnitude.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gpp_datausage::Hints;
use gpp_skeleton::builder::{idx, ProgramBuilder};
use gpp_skeleton::{ElemType, Flops};
use grophecy::machine::MachineConfig;
use grophecy::measurement::measure;
use grophecy::projector::Grophecy;

fn main() {
    // 1. Describe the CPU code as a code skeleton: c[i] = a[i] + b[i].
    let n = 1usize << 24; // 16M floats per vector
    let mut p = ProgramBuilder::new("vector-add");
    let a = p.array("a", ElemType::F32, &[n]);
    let b = p.array("b", ElemType::F32, &[n]);
    let c = p.array("c", ElemType::F32, &[n]);
    let mut k = p.kernel("add");
    let i = k.parallel_loop("i", n as u64);
    k.statement()
        .read(a, &[idx(i)])
        .read(b, &[idx(i)])
        .write(c, &[idx(i)])
        .flops(Flops {
            adds: 1,
            ..Flops::default()
        })
        .finish();
    k.finish();
    let program = p.build().expect("valid skeleton");

    // 2. Point GROPHECY++ at a machine. Construction runs the two-point
    //    PCIe calibration benchmark automatically (paper §III-C).
    let machine = MachineConfig::anl_eureka_node(42);
    let mut node = machine.node();
    let gro = Grophecy::calibrate(&machine, &mut node);
    println!("machine : {}", machine.name);
    println!("PCIe fit: {}", gro.pcie_model().h2d);

    // 3. Project.
    let hints = Hints::new();
    let proj = gro.project(&program, &hints);
    println!("\n{}", proj.plan);
    println!(
        "projected kernel time   : {:>8.3} ms",
        proj.kernel_time * 1e3
    );
    println!(
        "projected transfer time : {:>8.3} ms",
        proj.transfer_time * 1e3
    );
    println!(
        "projected total GPU time: {:>8.3} ms",
        proj.total_time(1) * 1e3
    );

    // 4. Compare against the "real" machine (the simulated node).
    let meas = measure(&mut node, &program, &proj);
    println!(
        "\nmeasured CPU time       : {:>8.3} ms",
        meas.cpu_time * 1e3
    );
    println!(
        "measured GPU total      : {:>8.3} ms",
        meas.total_time(1) * 1e3
    );

    let kernel_only = proj.speedup_kernel_only(meas.cpu_time, 1);
    let with_transfer = proj.speedup(meas.cpu_time, 1);
    println!("\nkernel-only projected speedup : {kernel_only:.2}x  <- the naive view");
    println!("transfer-aware projected speedup: {with_transfer:.2}x");
    println!("measured speedup               : {:.2}x", meas.speedup(1));

    if with_transfer < 1.0 {
        println!(
            "\nverdict: do NOT port — data transfer erases the GPU's {:.1}x kernel advantage.",
            kernel_only
        );
    } else {
        println!("\nverdict: port it.");
    }
}
