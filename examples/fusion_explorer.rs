//! Temporal kernel fusion explorer (§IV-B: "Multiple invocations of the
//! same kernel across several iterations can be fused together").
//!
//! For each HotSpot grid size, projects the per-iteration time at fusion
//! factors 1..16 and reports the optimum: small grids are launch-bound
//! and want deep fusion; large grids are bandwidth-bound and run best
//! unfused — matching the configurations the paper measures.
//!
//! ```text
//! cargo run --release --example fusion_explorer
//! ```

use gpp_workloads::hotspot::HotSpot;
use grophecy::fusion::explore_fusion;
use grophecy::machine::MachineConfig;
use grophecy::projector::Grophecy;

fn main() {
    let machine = MachineConfig::anl_eureka_node(31);
    let mut node = machine.node();
    let gro = Grophecy::calibrate(&machine, &mut node);

    println!("machine: {}\n", machine.name);
    println!(
        "{:>12} {:>14} {:>12} {:>16} {:>9}",
        "grid", "unfused/iter", "best factor", "fused/iter", "saving"
    );
    for n in [64usize, 128, 256, 512, 1024, 2048] {
        let hs = HotSpot { n };
        let proj = gro.project(&hs.program(), &hs.hints());
        let fa = explore_fusion(&gro, &proj.kernels[0], 1, 16);
        println!(
            "{:>12} {:>11.3} us {:>12} {:>13.3} us {:>8.1}%",
            hs.label(),
            fa.unfused_time * 1e6,
            fa.best_factor,
            fa.best_time * 1e6,
            fa.saving() * 100.0
        );
    }

    println!("\nfull candidate curve for 64 x 64:");
    let hs = HotSpot { n: 64 };
    let proj = gro.project(&hs.program(), &hs.hints());
    let fa = explore_fusion(&gro, &proj.kernels[0], 1, 16);
    for (f, t) in &fa.candidates {
        let marker = if *f == fa.best_factor {
            "  <= best"
        } else {
            ""
        };
        println!(
            "  fuse {f:>2} steps/launch: {:>8.3} us/iter{marker}",
            t * 1e6
        );
    }
}
