//! The `.gsk` text format must round-trip: `to_text` is a faithful
//! serialization of what `parse` produced, and formatting (`gpp fmt`,
//! which is parse + `to_text`) is idempotent. Checked against every
//! shipped skeleton so new example files are covered automatically.

use gpp_skeleton::text;
use std::path::PathBuf;

fn shipped_skeletons() -> Vec<(PathBuf, String)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("skeletons");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .map(|entry| entry.unwrap().path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "gsk"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no .gsk files under {}", dir.display());
    files
        .into_iter()
        .map(|p| {
            let src = std::fs::read_to_string(&p).unwrap();
            (p, src)
        })
        .collect()
}

#[test]
fn parse_to_text_parse_is_identity() {
    for (path, src) in shipped_skeletons() {
        let program = text::parse(&src).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let rendered = text::to_text(&program);
        let reparsed =
            text::parse(&rendered).unwrap_or_else(|e| panic!("{} (re-parse): {e}", path.display()));
        assert_eq!(
            program,
            reparsed,
            "{}: parse(to_text(p)) != p",
            path.display()
        );
    }
}

#[test]
fn fmt_is_idempotent() {
    for (path, src) in shipped_skeletons() {
        let once = text::to_text(&text::parse(&src).unwrap());
        let twice = text::to_text(&text::parse(&once).unwrap());
        assert_eq!(once, twice, "{}: fmt(fmt(x)) != fmt(x)", path.display());
    }
}
