//! Cross-crate pipeline tests: skeleton → analysis → projection →
//! measurement, exercised through the umbrella crate's public API.

use grophecy_plus_plus::core::machine::MachineConfig;
use grophecy_plus_plus::core::measurement::{cpu_work, measure};
use grophecy_plus_plus::core::projector::Grophecy;
use grophecy_plus_plus::datausage::{analyze, Hints};
use grophecy_plus_plus::skeleton::builder::{idx, ProgramBuilder};
use grophecy_plus_plus::skeleton::{ElemType, Flops, Program};

fn saxpy(n: usize) -> Program {
    let mut p = ProgramBuilder::new("saxpy");
    let x = p.array("x", ElemType::F32, &[n]);
    let y = p.array("y", ElemType::F32, &[n]);
    let mut k = p.kernel("saxpy");
    let i = k.parallel_loop("i", n as u64);
    k.statement()
        .read(x, &[idx(i)])
        .read(y, &[idx(i)])
        .write(y, &[idx(i)])
        .flops(Flops {
            adds: 1,
            muls: 1,
            ..Flops::default()
        })
        .finish();
    k.finish();
    p.build().unwrap()
}

#[test]
fn umbrella_crate_reexports_work_end_to_end() {
    let machine = MachineConfig::anl_eureka_node(3);
    let mut node = machine.node();
    let gro = Grophecy::calibrate(&machine, &mut node);
    let program = saxpy(1 << 22);
    let proj = gro.project(&program, &Hints::new());
    let meas = measure(&mut node, &program, &proj);
    assert!(proj.total_time(1) > 0.0);
    assert!(meas.total_time(1) > 0.0);
    // saxpy reads x fully, reads+writes y: 2 arrays in, 1 out.
    assert_eq!(proj.plan.h2d.len(), 2);
    assert_eq!(proj.plan.d2h.len(), 1);
}

#[test]
fn projection_scales_linearly_with_data_size() {
    let machine = MachineConfig::anl_eureka_node(3).quiet();
    let mut node = machine.node();
    let gro = Grophecy::calibrate(&machine, &mut node);
    let small = gro.project(&saxpy(1 << 20), &Hints::new());
    let big = gro.project(&saxpy(1 << 24), &Hints::new());
    let ratio = big.transfer_time / small.transfer_time;
    assert!((10.0..17.0).contains(&ratio), "transfer ratio {ratio}");
    let kratio = big.kernel_time / small.kernel_time;
    assert!((8.0..17.0).contains(&kratio), "kernel ratio {kratio}");
}

#[test]
fn analyzer_soundness_everything_read_is_available() {
    // For every paper workload: each kernel's reads must be covered by
    // (transferred-in sections) ∪ (sections written by earlier kernels or
    // itself). This is the analyzer's core safety property.
    use grophecy_plus_plus::brs::SectionSet;
    use grophecy_plus_plus::skeleton::sections::{read_sets, write_sets};
    use std::collections::BTreeMap;

    for case in gpp_workloads::paper_cases() {
        let program = &case.program;
        let plan = analyze(program, &case.hints);
        // Arrays transferred in (in full or in part) — for soundness we
        // credit the transferred section as "whole array" only when the
        // plan actually moves the whole array; partial transfers must
        // cover the reads minus prior writes, which is what we check via
        // byte accounting below.
        let mut have: BTreeMap<_, SectionSet> = BTreeMap::new();
        for t in &plan.h2d {
            let decl = program.array(t.array);
            // The plan transfers at least the read-not-written union.
            assert!(t.bytes > 0);
            have.insert(
                t.array,
                SectionSet::from_section(grophecy_plus_plus::brs::Section::whole(&decl.extents)),
            );
        }
        let mut written: BTreeMap<_, SectionSet> = BTreeMap::new();
        for kernel in &program.kernels {
            for (array, reads) in read_sets(kernel, program) {
                let covered_by_transfer = have.contains_key(&array);
                let covered_by_writes = written
                    .get(&array)
                    .is_some_and(|w| reads.parts().iter().all(|p| w.covers(p)));
                assert!(
                    covered_by_transfer || covered_by_writes,
                    "{} kernel {} reads array {} that is neither transferred nor device-produced",
                    case.app,
                    kernel.name,
                    program.array(array).name
                );
            }
            for (array, writes) in write_sets(kernel, program) {
                match written.get_mut(&array) {
                    Some(w) => w.union_with(&writes),
                    None => {
                        written.insert(array, writes);
                    }
                }
            }
        }
    }
}

#[test]
fn cpu_work_is_consistent_across_paper_workloads() {
    for case in gpp_workloads::paper_cases() {
        let w = cpu_work(&case.program);
        assert!(w.flops > 0.0, "{}: no CPU work", case.app);
        assert!(w.dram_bytes > 0.0);
        assert!(w.working_set > 0);
        assert_eq!(w.invocations as usize, case.program.kernels.len());
    }
}

#[test]
fn batched_plan_never_moves_fewer_bytes() {
    for case in gpp_workloads::paper_cases() {
        let plan = analyze(&case.program, &case.hints);
        let batched = plan.batched();
        assert_eq!(plan.total_bytes(), batched.total_bytes());
        assert!(batched.transfer_count() <= plan.transfer_count());
    }
}

#[test]
fn cross_machine_projection_pcie_v2_closes_the_gap() {
    // On a PCIe v2 + GT200 machine, transfers shrink: the projected
    // speedups must improve for every transfer-bound workload.
    let old = MachineConfig::anl_eureka_node(3);
    let new = MachineConfig::pcie_v2_gt200_node(3);
    let mut old_node = old.node();
    let mut new_node = new.node();
    let gro_old = Grophecy::calibrate(&old, &mut old_node);
    let gro_new = Grophecy::calibrate(&new, &mut new_node);
    for case in gpp_workloads::paper_cases() {
        let p_old = gro_old.project(&case.program, &case.hints);
        let p_new = gro_new.project(&case.program, &case.hints);
        assert!(
            p_new.transfer_time < p_old.transfer_time,
            "{}: v2 transfers not faster",
            case.app
        );
        assert!(
            p_new.total_time(1) < p_old.total_time(1),
            "{}: newer machine not faster overall",
            case.app
        );
    }
}
