//! The headline reproduction tests: every qualitative claim of the
//! paper's evaluation (§V) must hold on the simulated testbed.
//!
//! These are the assertions DESIGN.md §3 calls the "success criteria":
//! who wins, by roughly what factor, and where the crossovers fall.

use gpp_bench::eval::{evaluate_all, Evaluation, EVAL_SEED};

fn eval() -> &'static Evaluation {
    use std::sync::OnceLock;
    static EVAL: OnceLock<Evaluation> = OnceLock::new();
    EVAL.get_or_init(|| evaluate_all(EVAL_SEED))
}

/// Table I: "For all applications and data sets, with the exception of
/// HotSpot's smallest data set, the transfer time is greater than the
/// kernel execution time."
///
/// (On our simulated node the exception does not materialize — HotSpot
/// 64×64's kernel is launch-overhead-dominated and still shorter than its
/// transfers — so we assert the dominant claim for every case and record
/// the 64×64 deviation in EXPERIMENTS.md.)
#[test]
fn transfer_time_dominates_kernel_time() {
    for c in &eval().cases {
        let m = &c.measurement;
        assert!(
            m.transfer_time > m.kernel_time,
            "{} {}: kernel {:.3} ms vs transfer {:.3} ms",
            c.app,
            c.dataset,
            m.kernel_time * 1e3,
            m.transfer_time * 1e3
        );
    }
}

/// Table I's Percent Transfer column sits in the 60–90% band for the
/// large datasets (paper: 63–79%).
#[test]
fn percent_transfer_band() {
    for c in &eval().cases {
        if c.dataset.contains("64 x 64") {
            continue; // tiny case, launch-overhead regime
        }
        let pct = c.measurement.percent_transfer();
        assert!(
            (55.0..92.0).contains(&pct),
            "{} {}: {pct:.0}% transfer",
            c.app,
            c.dataset
        );
    }
}

/// Table II: the three predictors order as the paper reports —
/// kernel-only is catastrophically wrong, transfer-only much better,
/// kernel+transfer best.
#[test]
fn predictor_error_ordering() {
    let ev = eval();
    let kernel_only = ev.average_error_by_app(|r| r.error_kernel_only());
    let transfer_only = ev.average_error_by_app(|r| r.error_transfer_only());
    let combined = ev.average_error_by_app(|r| r.error_combined());
    assert!(
        kernel_only > 2.0 * transfer_only,
        "kernel-only {kernel_only:.0}% vs transfer-only {transfer_only:.0}%"
    );
    assert!(
        transfer_only > 2.0 * combined,
        "transfer-only {transfer_only:.0}% vs combined {combined:.0}%"
    );
    // Paper: 255% → 68% → 9%. Same orders of magnitude here.
    assert!(kernel_only > 150.0);
    assert!(combined < 25.0, "combined error {combined:.0}%");
}

/// §V-B: kernel-only projections overpredict the speedup severalfold for
/// every application.
#[test]
fn kernel_only_overpredicts_everywhere() {
    for c in &eval().cases {
        let r = c.speedup_report();
        assert!(
            r.predicted_kernel_only > 1.9 * r.measured,
            "{} {}: kernel-only {:.2}x vs measured {:.2}x",
            c.app,
            c.dataset,
            r.predicted_kernel_only,
            r.measured
        );
    }
}

/// §V-B-4, the Stassuij flip: the kernel-only projection says the GPU
/// wins, reality (and the transfer-aware projection) says it loses.
#[test]
fn stassuij_flips_from_speedup_to_slowdown() {
    let c = eval().case("Stassuij", "132");
    let r = c.speedup_report();
    assert!(
        r.predicted_kernel_only > 1.0,
        "naive view must predict a win"
    );
    assert!(r.measured < 1.0, "reality must be a slowdown");
    assert!(r.predicted_combined < 1.0, "GROPHECY++ must catch it");
    // Paper: predicted 0.38x vs actual 0.39x (1.6% error). Ours lands in
    // the same sub-1.0 regime with a small combined error.
    assert!(
        r.error_combined() < 10.0,
        "combined error {:.1}%",
        r.error_combined()
    );
}

/// §V-B: iteration sweeps — the two predictions converge as transfers
/// amortize, and the transfer-aware one is ≥2× more accurate at small
/// iteration counts (Figures 8/10/12).
#[test]
fn iteration_sweeps_converge_and_favor_transfer_awareness() {
    let ev = eval();
    for (app, dataset) in [("CFD", "233K"), ("HotSpot", "1024"), ("SRAD", "4096")] {
        let c = ev.case(app, dataset);
        let s = c.sweep([1, 2, 4, 8, 16, 32, 64, 128, 256]);
        // Monotone amortization.
        for w in s.points.windows(2) {
            assert!(
                w[1].measured >= w[0].measured * 0.999,
                "{app}: speedup not monotone in iterations"
            );
        }
        // Convergence of the two predictors.
        let gap0 = (s.points[0].with_transfer - s.points[0].without_transfer).abs();
        let gap_end = (s.points[8].with_transfer - s.points[8].without_transfer).abs();
        assert!(gap_end < gap0 * 0.15, "{app}: predictions did not converge");
        // The paper's ≥2x-accuracy window exists (≥ 4 iterations here).
        let until = s.twice_as_accurate_until().unwrap_or(0);
        assert!(
            until >= 4,
            "{app}: 2x-accuracy window only {until} iterations"
        );
    }
}

/// §V-A headline numbers: per-transfer prediction error across all
/// application transfers averages in the single digits (paper: 7.6%), and
/// the transfer-time error per case averages ~8%.
#[test]
fn transfer_prediction_error_band() {
    let ev = eval();
    let mut errs = Vec::new();
    for c in &ev.cases {
        for ((_, meas), pred) in c
            .measurement
            .transfer_times
            .iter()
            .zip(&c.projection.transfer_times)
        {
            errs.push(gpp_pcie::error_magnitude(*pred, *meas));
        }
    }
    let mean = errs.iter().sum::<f64>() / errs.len() as f64;
    assert!(mean < 12.0, "mean per-transfer error {mean:.1}%");

    let per_case: f64 = ev
        .cases
        .iter()
        .map(|c| c.speedup_report().transfer_time_error)
        .sum::<f64>()
        / ev.cases.len() as f64;
    assert!(
        per_case < 12.0,
        "mean per-case transfer error {per_case:.1}%"
    );
}

/// §I headline: kernel-time prediction error averages ~15% in the paper;
/// ours must stay within a comparable band (under ~50% for the worst
/// gather-heavy app, much less for the stencils).
#[test]
fn kernel_prediction_error_band() {
    let ev = eval();
    for c in &ev.cases {
        let r = c.speedup_report();
        let bound = if c.app == "CFD" { 55.0 } else { 30.0 };
        assert!(
            r.kernel_time_error < bound,
            "{} {}: kernel error {:.1}%",
            c.app,
            c.dataset,
            r.kernel_time_error
        );
    }
}

/// CFD is the app whose kernel-time error dominates (Figure 6): the model
/// underpredicts gather-heavy kernels because it assumes one uniform DRAM
/// derate.
#[test]
fn cfd_kernel_error_dominates_like_fig6() {
    let ev = eval();
    let cfd = ev.case("CFD", "233K").speedup_report();
    assert!(cfd.kernel_time_error > cfd.transfer_time_error);
    // And it is an *under*prediction.
    let c = ev.case("CFD", "233K");
    assert!(c.projection.kernel_time < c.measurement.kernel_time);
    // Stencil apps keep kernel errors small at their largest sizes.
    let srad = ev.case("SRAD", "4096").speedup_report();
    assert!(srad.kernel_time_error < cfd.kernel_time_error);
}

/// Determinism: the whole evaluation is reproducible bit-for-bit for a
/// given seed.
#[test]
fn evaluation_is_deterministic() {
    let a = evaluate_all(99);
    let b = evaluate_all(99);
    for (x, y) in a.cases.iter().zip(&b.cases) {
        assert_eq!(x.measurement.kernel_time, y.measurement.kernel_time);
        assert_eq!(x.measurement.transfer_time, y.measurement.transfer_time);
        assert_eq!(x.projection.kernel_time, y.projection.kernel_time);
    }
}
